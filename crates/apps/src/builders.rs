//! Builder helpers for assembling application models.
//!
//! Every Table II application is constructed from the same vocabulary:
//! *correct groups* (write-group = ground-truth group), *coupled groups*
//! (one write-group spanning two truth groups — the oversized-cluster
//! source), *singles* (independently churning settings) and *static keys*
//! (read-only registry bulk).

use ocasta_trace::{GroupBehavior, KeySpec, NoiseKey, SettingGroup, ValueKind, WorkloadSpec};
use ocasta_ttkv::Key;

/// Incrementally assembles a [`WorkloadSpec`] and its ground-truth groups.
#[derive(Debug)]
pub struct AppBuilder {
    spec: WorkloadSpec,
    truth: Vec<Vec<Key>>,
}

impl AppBuilder {
    /// Starts a builder for application `app` (the key prefix).
    pub fn new(app: &'static str) -> Self {
        let mut spec = WorkloadSpec::new(app);
        spec.sessions_per_day = 1.5;
        spec.reads_per_session = 200;
        AppBuilder {
            spec,
            truth: Vec::new(),
        }
    }

    /// Sets the expected sessions per day.
    pub fn sessions_per_day(&mut self, rate: f64) -> &mut Self {
        self.spec.sessions_per_day = rate;
        self
    }

    /// Adds a related group whose write behaviour matches the ground truth
    /// (will cluster correctly).
    pub fn correct_group(
        &mut self,
        name: &str,
        keys: Vec<KeySpec>,
        changes_per_day: f64,
    ) -> &mut Self {
        let truth: Vec<Key> = keys.iter().map(|k| self.spec.key(&k.name)).collect();
        self.truth.push(truth);
        self.spec
            .groups
            .push(SettingGroup::new(name, keys, changes_per_day));
        self
    }

    /// Adds a related group with explicit behaviour (e.g. an MRU window).
    pub fn behavior_group(
        &mut self,
        name: &str,
        keys: Vec<KeySpec>,
        changes_per_day: f64,
        behavior: GroupBehavior,
    ) -> &mut Self {
        let truth: Vec<Key> = keys.iter().map(|k| self.spec.key(&k.name)).collect();
        self.truth.push(truth);
        self.spec
            .groups
            .push(SettingGroup::new(name, keys, changes_per_day).with_behavior(behavior));
        self
    }

    /// Adds two ground-truth groups that the application *writes together*
    /// (one preferences-dialog "Apply" flushing both): the clustering will
    /// merge them into one oversized — incorrect — cluster.
    pub fn coupled_groups(
        &mut self,
        name: &str,
        half_a: Vec<KeySpec>,
        half_b: Vec<KeySpec>,
        changes_per_day: f64,
    ) -> &mut Self {
        self.truth
            .push(half_a.iter().map(|k| self.spec.key(&k.name)).collect());
        self.truth
            .push(half_b.iter().map(|k| self.spec.key(&k.name)).collect());
        let mut keys = half_a;
        keys.extend(half_b);
        self.spec
            .groups
            .push(SettingGroup::new(name, keys, changes_per_day));
        self
    }

    /// Adds an independently churning setting (clusters as a singleton).
    pub fn single(&mut self, key: KeySpec, writes_per_session: f64) -> &mut Self {
        self.spec.noise.push(NoiseKey::new(key, writes_per_session));
        self
    }

    /// Adds `count` anonymous correct groups of the given size, with rates
    /// varied deterministically so modification counts (and thus search
    /// order) differ between clusters.
    pub fn bulk_correct_groups(
        &mut self,
        prefix: &str,
        count: usize,
        size: usize,
        base_changes_per_day: f64,
    ) -> &mut Self {
        for i in 0..count {
            let keys: Vec<KeySpec> = (0..size)
                .map(|j| KeySpec::new(format!("{prefix}{i:03}/k{j}"), vary_kind(i + j)))
                .collect();
            let rate = base_changes_per_day * (0.4 + (i % 7) as f64 * 0.25);
            self.correct_group(&format!("{prefix}{i:03}"), keys, rate);
        }
        self
    }

    /// Adds `count` anonymous coupled (oversized-producing) group pairs.
    pub fn bulk_coupled_groups(
        &mut self,
        prefix: &str,
        count: usize,
        half_size: usize,
        base_changes_per_day: f64,
    ) -> &mut Self {
        for i in 0..count {
            let half = |tag: &str, i: usize| -> Vec<KeySpec> {
                (0..half_size)
                    .map(|j| KeySpec::new(format!("{prefix}{i:03}/{tag}{j}"), vary_kind(i + j)))
                    .collect()
            };
            let rate = base_changes_per_day * (0.4 + (i % 5) as f64 * 0.3);
            self.coupled_groups(&format!("{prefix}{i:03}"), half("a", i), half("b", i), rate);
        }
        self
    }

    /// Adds `count` anonymous singles with varied churn rates.
    pub fn bulk_singles(&mut self, prefix: &str, count: usize, base_rate: f64) -> &mut Self {
        for i in 0..count {
            let rate = base_rate * (0.3 + (i % 9) as f64 * 0.3);
            self.single(KeySpec::new(format!("{prefix}{i:03}"), vary_kind(i)), rate);
        }
        self
    }

    /// Adds read-only registry bulk.
    pub fn statics(&mut self, count: usize) -> &mut Self {
        self.spec.static_keys = count;
        self
    }

    /// Mutable access to the spec under construction (for behaviours the
    /// helpers do not cover, e.g. a group key that *also* churns alone).
    pub fn spec_mut(&mut self) -> &mut WorkloadSpec {
        &mut self.spec
    }

    /// Finishes, returning the spec and ground truth.
    pub fn build(self) -> (WorkloadSpec, Vec<Vec<Key>>) {
        (self.spec, self.truth)
    }

    /// The full key path for a relative name (for truth/scenario wiring).
    pub fn key(&self, name: &str) -> Key {
        self.spec.key(name)
    }
}

/// Deterministically varied value kinds so generated settings look like a
/// real mix of types.
fn vary_kind(i: usize) -> ValueKind {
    match i % 5 {
        0 => ValueKind::Toggle {
            initial: i.is_multiple_of(2),
        },
        1 => ValueKind::IntRange { min: 0, max: 100 },
        2 => ValueKind::FloatRange { min: 0.5, max: 4.0 },
        3 => ValueKind::Choice(vec!["small", "medium", "large"]),
        _ => ValueKind::PathName { extension: "dat" },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_group_records_truth() {
        let mut b = AppBuilder::new("app");
        b.correct_group(
            "g",
            vec![
                KeySpec::new("x", ValueKind::Toggle { initial: true }),
                KeySpec::new("y", ValueKind::Toggle { initial: true }),
            ],
            0.2,
        );
        let (spec, truth) = b.build();
        assert_eq!(spec.groups.len(), 1);
        assert_eq!(truth, vec![vec![Key::new("app/x"), Key::new("app/y")]]);
    }

    #[test]
    fn coupled_groups_split_truth_but_share_write_group() {
        let mut b = AppBuilder::new("app");
        b.coupled_groups(
            "dialog",
            vec![
                KeySpec::new("a1", vary_kind(0)),
                KeySpec::new("a2", vary_kind(1)),
            ],
            vec![
                KeySpec::new("b1", vary_kind(2)),
                KeySpec::new("b2", vary_kind(3)),
            ],
            0.2,
        );
        let (spec, truth) = b.build();
        assert_eq!(spec.groups.len(), 1, "one write-group");
        assert_eq!(spec.groups[0].keys.len(), 4);
        assert_eq!(truth.len(), 2, "two truth groups");
    }

    #[test]
    fn bulk_builders_hit_requested_counts() {
        let mut b = AppBuilder::new("app");
        b.bulk_correct_groups("grp", 5, 3, 0.1)
            .bulk_coupled_groups("cpl", 2, 2, 0.1)
            .bulk_singles("one", 7, 0.5)
            .statics(11);
        let (spec, truth) = b.build();
        assert_eq!(spec.groups.len(), 7);
        assert_eq!(truth.len(), 5 + 4);
        assert_eq!(spec.noise.len(), 7);
        assert_eq!(spec.key_count(), 5 * 3 + 2 * 4 + 7 + 11);
    }
}
