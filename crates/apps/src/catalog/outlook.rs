//! MS Outlook (e-mail client, Windows registry).
//!
//! Table II: 182 keys, 33 multi-setting clusters of 82, 97.0% accuracy.
//! Hosts error #1: the Navigation Panel stops working.

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Key controlling Navigation Panel visibility (error #1's offending key).
pub const NAVPANE_VISIBLE: &str = "outlook/navpane/visible";
/// The panel's width — related to visibility (same cluster).
pub const NAVPANE_WIDTH: &str = "outlook/navpane/width";

/// Builds the Outlook model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("outlook");
    b.sessions_per_day(2.0);
    // Error #1's cluster: the navigation pane pair.
    b.correct_group(
        "navpane",
        vec![
            KeySpec::new("navpane/visible", ValueKind::BiasedToggle { on_prob: 0.97 }),
            KeySpec::new("navpane/width", ValueKind::IntRange { min: 120, max: 400 }),
        ],
        0.1,
    );
    // 30 more correct pairs and one correct triple → 32 correct multi
    // clusters; one coupled dialog → the 33rd (oversized, the 3% inaccuracy).
    b.bulk_correct_groups("opt", 30, 2, 0.08);
    b.correct_group(
        "signature",
        vec![
            KeySpec::new("sig/enabled", ValueKind::Toggle { initial: false }),
            KeySpec::new("sig/file", ValueKind::PathName { extension: "sig" }),
            KeySpec::new("sig/position", ValueKind::Choice(vec!["top", "bottom"])),
        ],
        0.06,
    );
    b.coupled_groups(
        "security_dialog",
        vec![
            KeySpec::new(
                "security/zone",
                ValueKind::Choice(vec!["internet", "restricted"]),
            ),
            KeySpec::new("security/attachments", ValueKind::Toggle { initial: true }),
        ],
        vec![
            KeySpec::new("reading/preview", ValueKind::Toggle { initial: true }),
            KeySpec::new(
                "reading/mark_delay",
                ValueKind::IntRange { min: 1, max: 30 },
            ),
        ],
        0.05,
    );
    // 49 singleton churners, the rest static registry bulk.
    b.bulk_singles("single", 49, 0.4);
    b.statics(64);

    let (spec, truth) = b.build();
    AppModel {
        name: "outlook",
        display_name: "MS Outlook",
        category: "E-mail Client",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 182,
        paper_multi_clusters: 33,
        paper_total_clusters: 82,
        paper_accuracy: Some(97.0),
    }
}

/// Renders Outlook's main window.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("inbox");
    shot.add_if(
        config.get_bool(NAVPANE_VISIBLE).unwrap_or(true),
        "navigation_panel",
    );
    super::show_settings(
        &mut shot,
        config,
        &[
            NAVPANE_WIDTH,
            "outlook/sig/enabled",
            "outlook/reading/preview",
            "outlook/opt000/k0",
            "outlook/opt001/k0",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn navpane_drives_render() {
        let mut config = ConfigState::new();
        assert!(
            render(&config).contains("navigation_panel"),
            "visible by default"
        );
        config.set(Key::new(NAVPANE_VISIBLE), Value::from(false));
        assert!(!render(&config).contains("navigation_panel"));
    }

    #[test]
    fn model_shape_matches_table2_breakdown() {
        let m = model();
        assert_eq!(m.key_count(), 182);
        // 32 correct groups + 1 coupled write-group (2 truth halves).
        assert_eq!(m.spec.groups.len(), 33);
        assert_eq!(m.truth.len(), 34);
        assert_eq!(m.spec.noise.len(), 49);
    }
}
