//! Eye of GNOME (image viewer, Linux GConf).
//!
//! Table II: 5 keys, 0 multi-setting clusters of 5 (accuracy N/A).
//! Hosts error #11: the user cannot print image files.

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Printing backend toggle (error #11's offending key).
pub const PRINT_ENABLED: &str = "eog/print/enabled";

/// Builds the Eye of GNOME model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("eog");
    b.sessions_per_day(1.0);
    b.single(
        KeySpec::new("print/enabled", ValueKind::BiasedToggle { on_prob: 0.97 }),
        0.1,
    );
    b.bulk_singles("single", 4, 0.4);

    let (spec, truth) = b.build();
    AppModel {
        name: "eog",
        display_name: "Eye of GNOME",
        category: "Image Viewer",
        os: OsFlavor::Linux,
        logger: LoggerKind::GConf,
        spec,
        truth,
        render,
        paper_keys: 5,
        paper_multi_clusters: 0,
        paper_total_clusters: 5,
        paper_accuracy: None,
    }
}

/// Renders the viewer's File menu.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("image_canvas");
    shot.add_if(
        config.get_bool(PRINT_ENABLED).unwrap_or(true),
        "print_menu_item",
    );
    super::show_settings(&mut shot, config, &["eog/single000", "eog/single001"]);
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn print_item_follows_flag() {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("print_menu_item"));
        config.set(Key::new(PRINT_ENABLED), Value::from(false));
        assert!(!render(&config).contains("print_menu_item"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 5);
        assert!(m.spec.groups.is_empty());
        assert_eq!(m.spec.noise.len(), 5);
    }
}
