//! Windows Media Player (media player, Windows registry).
//!
//! Table II: 165 keys, 21 multi-setting clusters of 41, 90.5% accuracy.
//! Hosts error #5: captions are not shown while playing video — a size-4
//! cluster with a single offending key.

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Caption display toggle (error #5's offending key).
pub const CAPTIONS_ENABLED: &str = "wmp/captions/enabled";

/// Builds the Windows Media Player model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("wmp");
    b.sessions_per_day(1.5);
    // Error #5's size-4 cluster: the caption configuration.
    b.correct_group(
        "captions",
        vec![
            KeySpec::new(
                "captions/enabled",
                ValueKind::BiasedToggle { on_prob: 0.97 },
            ),
            KeySpec::new(
                "captions/style",
                ValueKind::Choice(vec!["overlay", "below"]),
            ),
            KeySpec::new("captions/size", ValueKind::IntRange { min: 10, max: 32 }),
            KeySpec::new("captions/lang", ValueKind::Choice(vec!["en", "fr", "es"])),
        ],
        0.12,
    );
    // 18 more correct pairs → 19 correct; 2 coupled dialogs → 2 oversized.
    // 19/21 = 90.5%.
    b.bulk_correct_groups("play", 18, 2, 0.07);
    b.bulk_coupled_groups("dlg", 2, 2, 0.05);
    b.bulk_singles("single", 20, 0.5);
    b.statics(97);

    let (spec, truth) = b.build();
    AppModel {
        name: "wmp",
        display_name: "Windows Media Player",
        category: "Media Player",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 165,
        paper_multi_clusters: 21,
        paper_total_clusters: 41,
        paper_accuracy: Some(90.5),
    }
}

/// Renders video playback.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("video_frame");
    shot.add_if(
        config.get_bool(CAPTIONS_ENABLED).unwrap_or(true),
        "captions",
    );
    super::show_settings(
        &mut shot,
        config,
        &["wmp/captions/style", "wmp/play000/k0", "wmp/single000"],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn captions_follow_flag() {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("captions"));
        config.set(Key::new(CAPTIONS_ENABLED), Value::from(false));
        assert!(!render(&config).contains("captions"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 165);
        assert_eq!(m.spec.groups.len(), 21);
        assert_eq!(m.truth[0].len(), 4);
    }
}
