//! Evolution Mail (e-mail client, Linux GConf).
//!
//! Table II: 183 keys, 18 multi-setting clusters of 65, 38.9% accuracy —
//! the paper's worst case, caused by preference dialogs flushing several
//! dependent groups inside one one-second window. Hosts errors #8 (starts
//! offline), #9 (does not auto-mark read mail — the Figure 1c pair) and
//! #10 (reply does not start at the top).

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Start in offline mode (error #8's offending key).
pub const START_OFFLINE: &str = "evolution/offline/start_offline";
/// Folders to synchronise for offline use — same cluster.
pub const OFFLINE_SYNC: &str = "evolution/offline/sync_folders";
/// Auto-mark opened mail as seen (Figure 1c; error #9).
pub const MARK_SEEN: &str = "evolution/mail/mark_seen";
/// Delay before marking seen, meaningful only when `mark_seen` (error #9).
pub const MARK_SEEN_TIMEOUT: &str = "evolution/mail/mark_seen_timeout";
/// Where the reply cursor starts (error #10's offending key).
pub const REPLY_STYLE: &str = "evolution/composer/reply_start";
/// Whether the signature sits above the quote — same cluster.
pub const SIGNATURE_TOP: &str = "evolution/composer/signature_top";

/// Builds the Evolution model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("evolution");
    b.sessions_per_day(2.0);
    // The three error clusters (all correct pairs).
    b.correct_group(
        "offline",
        vec![
            KeySpec::new(
                "offline/start_offline",
                ValueKind::BiasedToggle { on_prob: 0.03 },
            ),
            KeySpec::new(
                "offline/sync_folders",
                ValueKind::Choice(vec!["inbox", "all", "none"]),
            ),
        ],
        0.1,
    );
    b.correct_group(
        "mark_seen",
        vec![
            KeySpec::new("mail/mark_seen", ValueKind::BiasedToggle { on_prob: 0.97 }),
            KeySpec::new(
                "mail/mark_seen_timeout",
                ValueKind::IntRange {
                    min: 500,
                    max: 5000,
                },
            ),
        ],
        0.12,
    );
    b.correct_group(
        "reply",
        vec![
            KeySpec::new(
                "composer/reply_start",
                ValueKind::WeightedChoice(vec![("top", 30), ("bottom", 1)]),
            ),
            KeySpec::new(
                "composer/signature_top",
                ValueKind::Toggle { initial: true },
            ),
        ],
        0.1,
    );
    // 4 more correct pairs → 7 correct multi clusters; 11 coupled dialog
    // flushes → 11 oversized clusters. 7/18 = 38.9%.
    b.bulk_correct_groups("view", 4, 2, 0.08);
    b.bulk_coupled_groups("dialog", 11, 2, 0.06);
    // 47 singleton churners; the rest is static GConf bulk.
    b.bulk_singles("single", 47, 0.4);
    b.statics(78);

    let (spec, truth) = b.build();
    AppModel {
        name: "evolution",
        display_name: "Evolution Mail",
        category: "E-mail Client",
        os: OsFlavor::Linux,
        logger: LoggerKind::GConf,
        spec,
        truth,
        render,
        paper_keys: 183,
        paper_multi_clusters: 18,
        paper_total_clusters: 65,
        paper_accuracy: Some(38.9),
    }
}

/// Renders Evolution's main window and composer state.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("folder_list");
    shot.add_if(
        config.get_bool(START_OFFLINE).unwrap_or(false),
        "offline_banner",
    );
    let auto_mark = config.get_bool(MARK_SEEN).unwrap_or(true)
        && config.get_int(MARK_SEEN_TIMEOUT).unwrap_or(1500) >= 0;
    shot.add_if(auto_mark, "auto_mark_read");
    shot.add(format!(
        "reply_cursor:{}",
        config.get_str(REPLY_STYLE).unwrap_or("top")
    ));
    super::show_settings(
        &mut shot,
        config,
        &[
            SIGNATURE_TOP,
            OFFLINE_SYNC,
            "evolution/view000/k0",
            "evolution/dialog000/a0",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn offline_banner_follows_flag() {
        let mut config = ConfigState::new();
        assert!(!render(&config).contains("offline_banner"));
        config.set(Key::new(START_OFFLINE), Value::from(true));
        assert!(render(&config).contains("offline_banner"));
    }

    #[test]
    fn auto_mark_requires_both_settings_healthy() {
        let mut config = ConfigState::new();
        assert!(
            render(&config).contains("auto_mark_read"),
            "defaults are healthy"
        );
        config.set(Key::new(MARK_SEEN), Value::from(false));
        config.set(Key::new(MARK_SEEN_TIMEOUT), Value::from(-1));
        assert!(!render(&config).contains("auto_mark_read"));
        // Fixing only one of the pair is not enough (error #9's NoClust=N).
        config.set(Key::new(MARK_SEEN), Value::from(true));
        assert!(!render(&config).contains("auto_mark_read"));
        config.set(Key::new(MARK_SEEN_TIMEOUT), Value::from(1500));
        assert!(render(&config).contains("auto_mark_read"));
    }

    #[test]
    fn reply_cursor_is_always_reported() {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("reply_cursor:top"));
        config.set(Key::new(REPLY_STYLE), Value::from("bottom"));
        assert!(render(&config).contains("reply_cursor:bottom"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 183);
        assert_eq!(m.spec.groups.len(), 18);
        assert_eq!(m.truth.len(), 7 + 22);
        assert_eq!(m.spec.noise.len(), 47);
    }
}
