//! GNOME Edit / gedit (word processor, Linux GConf).
//!
//! Table II: 10 keys, 1 multi-setting cluster of 7, 0% accuracy (its only
//! multi cluster is oversized). Hosts error #12: the user cannot save any
//! document.

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// The VFS scheme documents are saved through (error #12's offending key:
/// a `readonly` scheme breaks every save).
pub const SAVE_SCHEME: &str = "gedit/filesaver/scheme";

/// Builds the gedit model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("gedit");
    b.sessions_per_day(1.2);
    // The lone multi cluster: two *unrelated* settings the preferences
    // dialog happens to flush together — oversized, hence 0% accuracy.
    b.coupled_groups(
        "prefs_dialog",
        vec![KeySpec::new(
            "view/wrap_mode",
            ValueKind::Choice(vec!["word", "char", "none"]),
        )],
        vec![KeySpec::new(
            "editor/tab_width",
            ValueKind::IntRange { min: 2, max: 8 },
        )],
        0.15,
    );
    // Six independent settings, including the save scheme.
    b.single(
        KeySpec::new(
            "filesaver/scheme",
            ValueKind::WeightedChoice(vec![("file", 8), ("sftp", 2)]),
        ),
        0.1,
    );
    b.bulk_singles("single", 5, 0.5);
    b.statics(2);

    let (spec, truth) = b.build();
    AppModel {
        name: "gedit",
        display_name: "GNOME Edit",
        category: "Word Processor",
        os: OsFlavor::Linux,
        logger: LoggerKind::GConf,
        spec,
        truth,
        render,
        paper_keys: 10,
        paper_multi_clusters: 1,
        paper_total_clusters: 7,
        paper_accuracy: Some(0.0),
    }
}

/// Renders gedit's save dialog availability.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("text_area");
    let scheme = config.get_str(SAVE_SCHEME).unwrap_or("file");
    shot.add_if(scheme != "readonly", "save_dialog");
    super::show_settings(
        &mut shot,
        config,
        &[
            "gedit/view/wrap_mode",
            "gedit/editor/tab_width",
            "gedit/single000",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn readonly_scheme_blocks_saving() {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("save_dialog"));
        config.set(Key::new(SAVE_SCHEME), Value::from("readonly"));
        assert!(!render(&config).contains("save_dialog"));
        config.set(Key::new(SAVE_SCHEME), Value::from("sftp"));
        assert!(render(&config).contains("save_dialog"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 10);
        assert_eq!(m.spec.groups.len(), 1, "one (oversized) write-group");
        assert_eq!(m.truth.len(), 2, "two truth singletons under the coupling");
    }
}
