//! MS Word (word processor, Windows registry).
//!
//! Table II: 143 keys, 18 multi-setting clusters of 110, 100% accuracy.
//! Hosts error #2: the recently-accessed-documents list disappears — the
//! paper's flagship multi-setting error (Figure 1a), whose offending keys
//! span several clusters at default parameters and require threshold/window
//! tuning to repair.

use ocasta_repair::Screenshot;
use ocasta_trace::{GroupBehavior, KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// The `Max Display` setting bounding the MRU list (Figure 1a).
pub const MRU_MAX: &str = "word/mru/max_display";
/// Number of MRU item slots (`Item 1` … `Item 7`).
pub const MRU_SLOTS: usize = 7;

/// The key of MRU item slot `i` (1-based).
pub fn mru_item(i: usize) -> String {
    format!("word/mru/item{i}")
}

/// Builds the Word model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("word");
    b.sessions_per_day(2.5);
    // The Figure 1a MRU window: max_display + 7 item slots. Items rotate on
    // every document open (frequent, staggered over ~2.5 s); the max changes
    // rarely. At default clustering parameters the items cluster without the
    // max — the undersized split behind error #2.
    // The max never drops below 3, so the first three item slots are always
    // live: they form the stable multi cluster Ocasta finds at the default
    // threshold, while slots 4–7 churn in and out (the undersized split).
    let mut mru_keys = vec![KeySpec::new(
        "mru/max_display",
        ValueKind::IntRange {
            min: 3,
            max: MRU_SLOTS as i64,
        },
    )];
    for i in 1..=MRU_SLOTS {
        mru_keys.push(KeySpec::new(
            format!("mru/item{i}"),
            ValueKind::PathName { extension: "doc" },
        ));
    }
    b.behavior_group(
        "mru",
        mru_keys,
        0.1,
        GroupBehavior::MruWindow {
            span_ms: 2_500,
            item_updates_per_session: 0.5,
        },
    );
    // 17 ordinary correct pairs → 18 multi clusters in total.
    b.bulk_correct_groups("fmt", 17, 2, 0.07);
    // 91 singleton churners (+ the max key splitting off = 92 singletons).
    b.bulk_singles("single", 91, 0.3);
    b.statics(10);

    let (spec, truth) = b.build();
    AppModel {
        name: "word",
        display_name: "MS Word",
        category: "Word Processor",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 143,
        paper_multi_clusters: 18,
        paper_total_clusters: 110,
        paper_accuracy: Some(100.0),
    }
}

/// Renders Word's File menu: the recently-used list length is the visible
/// symptom of error #2.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("document_canvas");
    let max = config.get_int(MRU_MAX).unwrap_or(0).max(0) as usize;
    let live = (1..=MRU_SLOTS)
        .take_while(|&i| config.contains(&mru_item(i)))
        .count();
    shot.add(format!("recent_documents:{}", live.min(max)));
    super::show_settings(
        &mut shot,
        config,
        &[
            "word/fmt000/k0",
            "word/fmt001/k1",
            "word/fmt002/k0",
            "word/single000",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    fn healthy_config() -> ConfigState {
        let mut config = ConfigState::new();
        config.set(Key::new(MRU_MAX), Value::from(3));
        for i in 1..=3 {
            config.set(Key::new(mru_item(i)), Value::from(format!("doc{i}.doc")));
        }
        config
    }

    #[test]
    fn recent_list_counts_live_items_up_to_max() {
        let shot = render(&healthy_config());
        assert!(shot.contains("recent_documents:3"));

        // Reducing the max hides items even if the slots survive.
        let mut capped = healthy_config();
        capped.set(Key::new(MRU_MAX), Value::from(1));
        assert!(render(&capped).contains("recent_documents:1"));

        // Deleting the items empties the list even with a generous max.
        let mut empty = healthy_config();
        for i in 1..=3 {
            empty.remove(&mru_item(i));
        }
        assert!(render(&empty).contains("recent_documents:0"));
    }

    #[test]
    fn partial_restore_does_not_fix_error2() {
        // Error #2's injection: max = 0 and all items deleted. Restoring
        // only one side leaves the list empty — the NoClust failure mode.
        let mut broken = ConfigState::new();
        broken.set(Key::new(MRU_MAX), Value::from(0));
        assert!(render(&broken).contains("recent_documents:0"));

        let mut only_max = broken.clone();
        only_max.set(Key::new(MRU_MAX), Value::from(5));
        assert!(render(&only_max).contains("recent_documents:0"));

        let mut only_items = broken.clone();
        only_items.set(Key::new(mru_item(1)), Value::from("a.doc"));
        assert!(render(&only_items).contains("recent_documents:0"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 143);
        assert_eq!(m.spec.groups.len(), 18);
        assert_eq!(m.spec.noise.len(), 91);
        assert_eq!(m.truth[0].len(), 8, "MRU truth group is the size-8 cluster");
    }
}
