//! Windows Explorer (shell, Windows registry).
//!
//! Table II: 298 keys, 32 multi-setting clusters of 91, 84.4% accuracy.
//! Hosts error #4 ("Open with" menu misses applications for `.flv` files —
//! the list/name split that needs threshold tuning) and error #7 (image
//! files always open maximized).

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, NoiseKey, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Ordered list of handler names for `.flv` (error #4).
pub const OPENWITH_LIST: &str = "explorer/openwith/flv/list";
/// Registered VLC handler (error #4).
pub const OPENWITH_VLC: &str = "explorer/openwith/flv/app_vlc";
/// Registered MPlayer handler (error #4).
pub const OPENWITH_MPLAYER: &str = "explorer/openwith/flv/app_mplayer";
/// Image-viewer window mode (error #7).
pub const IMGVIEW_MODE: &str = "explorer/imgview/window_mode";
/// Image-viewer window geometry (error #7).
pub const IMGVIEW_GEOMETRY: &str = "explorer/imgview/geometry";

/// Builds the Explorer model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("explorer");
    b.sessions_per_day(3.0);
    // Error #4's truth group: the handler list plus the two handler entries.
    // Registering a handler writes all three together...
    b.correct_group(
        "openwith_flv",
        vec![
            KeySpec::new(
                "openwith/flv/list",
                ValueKind::Choice(vec!["app_vlc,app_mplayer", "app_mplayer,app_vlc"]),
            ),
            KeySpec::new(
                "openwith/flv/app_vlc",
                ValueKind::PathName { extension: "exe" },
            ),
            KeySpec::new(
                "openwith/flv/app_mplayer",
                ValueKind::PathName { extension: "exe" },
            ),
        ],
        0.1,
    );
    // ...but the *list* also changes alone whenever the user picks a handler
    // (most-recently-used reordering), which is exactly why the default
    // threshold splits it from the handler entries (§VI-B, error #4).
    b.spec_mut().noise.push(NoiseKey::new(
        KeySpec::new(
            "openwith/flv/list",
            ValueKind::Choice(vec!["app_vlc,app_mplayer", "app_mplayer,app_vlc"]),
        ),
        0.5,
    ));
    // Error #7's pair: how the image-viewer window opens.
    b.correct_group(
        "imgview",
        vec![
            KeySpec::new(
                "imgview/window_mode",
                ValueKind::WeightedChoice(vec![("normal", 30), ("maximized", 1)]),
            ),
            KeySpec::new(
                "imgview/geometry",
                ValueKind::Choice(vec!["80,60,800x600", "100,80,1024x768"]),
            ),
        ],
        0.12,
    );
    // 25 more correct pairs → 27 correct multi clusters; 5 coupled dialogs
    // → 5 oversized. 27/32 = 84.4%.
    b.bulk_correct_groups("shell", 25, 2, 0.07);
    b.bulk_coupled_groups("dlg", 5, 2, 0.05);
    // 58 singleton churners (59 singletons once the list splits off).
    b.bulk_singles("single", 58, 0.45);
    b.statics(164);

    let (spec, truth) = b.build();
    AppModel {
        name: "explorer",
        display_name: "Explorer",
        category: "Windows Shell",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 298,
        paper_multi_clusters: 32,
        paper_total_clusters: 91,
        paper_accuracy: Some(84.4),
    }
}

/// Renders the shell surfaces the two errors manifest in.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("file_pane");
    // "Open with" for .flv: an entry is usable when it is both named in the
    // list and registered as a handler key.
    let list = config.get_str(OPENWITH_LIST).unwrap_or("");
    let usable = list
        .split(',')
        .filter(|name| !name.is_empty())
        .filter(|name| config.contains(&format!("explorer/openwith/flv/{name}")))
        .count();
    shot.add(format!("openwith_flv:{usable}"));
    // Image viewer launch.
    let normal = config.get_str(IMGVIEW_MODE).unwrap_or("normal") == "normal"
        && config.get_str(IMGVIEW_GEOMETRY).unwrap_or("80,60,800x600") != "0,0,full";
    shot.add(if normal {
        "image_window:normal"
    } else {
        "image_window:maximized"
    });
    super::show_settings(
        &mut shot,
        config,
        &[
            "explorer/shell000/k0",
            "explorer/dlg000/a0",
            "explorer/single000",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    fn healthy() -> ConfigState {
        let mut config = ConfigState::new();
        config.set(Key::new(OPENWITH_LIST), Value::from("app_vlc,app_mplayer"));
        config.set(Key::new(OPENWITH_VLC), Value::from("vlc.exe"));
        config.set(Key::new(OPENWITH_MPLAYER), Value::from("mplayer.exe"));
        config
    }

    #[test]
    fn openwith_counts_usable_handlers() {
        assert!(render(&healthy()).contains("openwith_flv:2"));
        // Error #4: empty list and deleted handler keys.
        let mut broken = healthy();
        broken.set(Key::new(OPENWITH_LIST), Value::from(""));
        broken.remove(OPENWITH_VLC);
        broken.remove(OPENWITH_MPLAYER);
        assert!(render(&broken).contains("openwith_flv:0"));
        // Restoring only the list does not help (names dangle).
        let mut list_only = broken.clone();
        list_only.set(Key::new(OPENWITH_LIST), Value::from("app_vlc,app_mplayer"));
        assert!(render(&list_only).contains("openwith_flv:0"));
        // Restoring only one handler without the list does not help either.
        let mut app_only = broken.clone();
        app_only.set(Key::new(OPENWITH_VLC), Value::from("vlc.exe"));
        assert!(render(&app_only).contains("openwith_flv:0"));
    }

    #[test]
    fn image_window_needs_both_settings(/* error #7 */) {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("image_window:normal"));
        config.set(Key::new(IMGVIEW_MODE), Value::from("maximized"));
        config.set(Key::new(IMGVIEW_GEOMETRY), Value::from("0,0,full"));
        assert!(render(&config).contains("image_window:maximized"));
        // One key back is not enough.
        config.set(Key::new(IMGVIEW_MODE), Value::from("normal"));
        assert!(render(&config).contains("image_window:maximized"));
        config.set(Key::new(IMGVIEW_GEOMETRY), Value::from("80,60,800x600"));
        assert!(render(&config).contains("image_window:normal"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 298);
        assert_eq!(m.spec.groups.len(), 32);
        // 27 correct + 10 coupling halves.
        assert_eq!(m.truth.len(), 37);
    }
}
