//! The 11 evaluated applications (Table II).
//!
//! Each module builds one [`AppModel`]: its configuration
//! schema sized to the paper's per-app key counts, ground-truth groups
//! arranged so the clustering reproduces Table II's correct/oversized
//! cluster mix, and a render function exposing the visible state the
//! Table III errors manifest in.

pub mod acrobat;
pub mod chrome;
pub mod eog;
pub mod evolution;
pub mod explorer;
pub mod gedit;
pub mod iexplorer;
pub mod outlook;
pub mod paint;
pub mod wmp;
pub mod word;

use ocasta_repair::Screenshot;
use ocasta_ttkv::ConfigState;

use crate::model::AppModel;

/// All 11 application models, in Table II order.
pub fn all_models() -> Vec<AppModel> {
    vec![
        outlook::model(),
        evolution::model(),
        iexplorer::model(),
        chrome::model(),
        word::model(),
        gedit::model(),
        eog::model(),
        paint::model(),
        acrobat::model(),
        explorer::model(),
        wmp::model(),
    ]
}

/// Looks up a model by its key prefix (e.g. `"word"`).
pub fn model_by_name(name: &str) -> Option<AppModel> {
    all_models().into_iter().find(|m| m.name == name)
}

/// Renders a handful of generic visible settings (so rollbacks of unrelated
/// clusters still change the screen, as they do for real applications, and
/// the screenshot gallery sees more than one unique image).
pub(crate) fn show_settings(shot: &mut Screenshot, config: &ConfigState, keys: &[&str]) {
    for key in keys {
        if let Some(value) = config.get(key) {
            shot.add(format!(
                "{}:{}",
                key.rsplit('/').next().unwrap_or(key),
                value
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_models_with_unique_prefixes() {
        let models = all_models();
        assert_eq!(models.len(), 11);
        let mut names: Vec<_> = models.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "duplicate app prefixes");
    }

    #[test]
    fn key_counts_match_table2() {
        for model in all_models() {
            assert_eq!(
                model.key_count(),
                model.paper_keys,
                "{}: built {} keys, Table II says {}",
                model.display_name,
                model.key_count(),
                model.paper_keys
            );
        }
        let total: usize = all_models().iter().map(|m| m.paper_keys).sum();
        assert_eq!(total, 1_871, "Table II total keys");
    }

    #[test]
    fn paper_cluster_totals_match_table2() {
        let models = all_models();
        let multi: usize = models.iter().map(|m| m.paper_multi_clusters).sum();
        let all: usize = models.iter().map(|m| m.paper_total_clusters).sum();
        assert_eq!(multi, 255);
        assert_eq!(all, 1_005);
    }

    #[test]
    fn lookup_by_name() {
        assert!(model_by_name("acrobat").is_some());
        assert!(model_by_name("netscape").is_none());
    }

    #[test]
    fn renders_are_deterministic_and_nonempty_on_defaults() {
        for model in all_models() {
            let empty = ConfigState::new();
            let a = (model.render)(&empty);
            let b = (model.render)(&empty);
            assert_eq!(a, b, "{} render not deterministic", model.name);
        }
    }
}
