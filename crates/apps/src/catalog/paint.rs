//! MS Paint (image editor, Windows registry).
//!
//! Table II: 66 keys, 2 multi-setting clusters of 8, 50% accuracy.
//! Hosts error #6: the text tool bar does not pop up automatically when
//! entering text — an 8-setting cluster whose repair needs several keys
//! rolled back together (NoClust fails).

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Auto-popup of the text tool bar (error #6).
pub const TEXTTOOL_AUTO: &str = "paint/texttool/auto_popup";
/// Tool bar X position; negative values park it off screen (error #6).
pub const TEXTTOOL_X: &str = "paint/texttool/pos_x";
/// Tool bar Y position; negative values park it off screen (error #6).
pub const TEXTTOOL_Y: &str = "paint/texttool/pos_y";

/// Builds the Paint model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("paint");
    b.sessions_per_day(0.8);
    // Error #6's size-8 cluster: the text-tool configuration written as one
    // block whenever the user rearranges the text UI.
    b.correct_group(
        "texttool",
        vec![
            KeySpec::new(
                "texttool/auto_popup",
                ValueKind::BiasedToggle { on_prob: 0.97 },
            ),
            KeySpec::new("texttool/pos_x", ValueKind::IntRange { min: 0, max: 1600 }),
            KeySpec::new("texttool/pos_y", ValueKind::IntRange { min: 0, max: 1000 }),
            KeySpec::new(
                "texttool/font",
                ValueKind::Choice(vec!["arial", "courier", "times"]),
            ),
            KeySpec::new("texttool/size", ValueKind::IntRange { min: 8, max: 72 }),
            KeySpec::new("texttool/bold", ValueKind::Toggle { initial: false }),
            KeySpec::new("texttool/italic", ValueKind::Toggle { initial: false }),
            KeySpec::new("texttool/smooth", ValueKind::Toggle { initial: true }),
        ],
        0.12,
    );
    // The second multi cluster is an oversized coupling → 1/2 = 50%.
    b.bulk_coupled_groups("dlg", 1, 2, 0.06);
    b.bulk_singles("single", 6, 0.5);
    b.statics(48);

    let (spec, truth) = b.build();
    AppModel {
        name: "paint",
        display_name: "MS Paint",
        category: "Image Editor",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 66,
        paper_multi_clusters: 2,
        paper_total_clusters: 8,
        paper_accuracy: Some(50.0),
    }
}

/// Renders Paint while the text tool is active.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("canvas");
    let auto = config.get_bool(TEXTTOOL_AUTO).unwrap_or(true);
    let on_screen = config.get_int(TEXTTOOL_X).unwrap_or(100) >= 0
        && config.get_int(TEXTTOOL_Y).unwrap_or(100) >= 0;
    shot.add_if(auto && on_screen, "text_toolbar");
    super::show_settings(
        &mut shot,
        config,
        &["paint/texttool/font", "paint/dlg000/a0", "paint/single000"],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn toolbar_needs_auto_and_on_screen_position() {
        let mut config = ConfigState::new();
        assert!(render(&config).contains("text_toolbar"), "healthy defaults");
        // Error #6's injection: auto off *and* parked off screen.
        config.set(Key::new(TEXTTOOL_AUTO), Value::from(false));
        config.set(Key::new(TEXTTOOL_X), Value::from(-4000));
        config.set(Key::new(TEXTTOOL_Y), Value::from(-4000));
        assert!(!render(&config).contains("text_toolbar"));
        // Fixing a single key is not enough (NoClust failure).
        config.set(Key::new(TEXTTOOL_AUTO), Value::from(true));
        assert!(!render(&config).contains("text_toolbar"));
        config.set(Key::new(TEXTTOOL_X), Value::from(100));
        assert!(!render(&config).contains("text_toolbar"));
        config.set(Key::new(TEXTTOOL_Y), Value::from(100));
        assert!(render(&config).contains("text_toolbar"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 66);
        assert_eq!(m.spec.groups.len(), 2);
        assert_eq!(m.truth[0].len(), 8);
    }
}
