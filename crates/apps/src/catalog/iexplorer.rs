//! Internet Explorer (web browser, Windows registry).
//!
//! Table II: 33 keys, 9 multi-setting clusters of 12, 66.7% accuracy.
//! Hosts error #3: the "disable add-ons" dialog pops up on every launch.

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// When `false`, IE nags about slow add-ons on every start (error #3).
pub const ADDON_PROMPT_DISABLED: &str = "ie/addons/prompt_disabled";
/// How often (days) the add-on performance check runs — same cluster.
pub const ADDON_CHECK_INTERVAL: &str = "ie/addons/check_interval";

/// Builds the Internet Explorer model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("ie");
    b.sessions_per_day(3.0);
    // Error #3's cluster.
    b.correct_group(
        "addons",
        vec![
            KeySpec::new(
                "addons/prompt_disabled",
                ValueKind::BiasedToggle { on_prob: 0.97 },
            ),
            KeySpec::new(
                "addons/check_interval",
                ValueKind::IntRange { min: 1, max: 30 },
            ),
        ],
        0.1,
    );
    // 5 more correct pairs (6 correct multi clusters) and 3 coupled dialogs
    // (3 oversized) → 9 multi clusters, 6/9 = 66.7% accurate.
    b.bulk_correct_groups("zone", 5, 2, 0.09);
    b.bulk_coupled_groups("dlg", 3, 2, 0.07);
    b.bulk_singles("single", 3, 0.8);
    b.statics(6);

    let (spec, truth) = b.build();
    AppModel {
        name: "ie",
        display_name: "Internet Explorer",
        category: "Web Browser",
        os: OsFlavor::Windows,
        logger: LoggerKind::Registry,
        spec,
        truth,
        render,
        paper_keys: 33,
        paper_multi_clusters: 9,
        paper_total_clusters: 12,
        paper_accuracy: Some(66.7),
    }
}

/// Renders the IE launch experience: the add-on nag dialog is the symptom.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("browser_window");
    shot.add_if(
        !config.get_bool(ADDON_PROMPT_DISABLED).unwrap_or(true),
        "addon_popup",
    );
    super::show_settings(
        &mut shot,
        config,
        &[
            ADDON_CHECK_INTERVAL,
            "ie/zone000/k0",
            "ie/dlg000/a0",
            "ie/single000",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn popup_shows_only_when_prompt_enabled() {
        let mut config = ConfigState::new();
        assert!(!render(&config).contains("addon_popup"));
        config.set(Key::new(ADDON_PROMPT_DISABLED), Value::from(false));
        assert!(render(&config).contains("addon_popup"));
        config.set(Key::new(ADDON_PROMPT_DISABLED), Value::from(true));
        assert!(!render(&config).contains("addon_popup"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 33);
        assert_eq!(m.spec.groups.len(), 9);
        assert_eq!(m.truth.len(), 6 + 6);
    }
}
