//! Acrobat Reader (document reader, Linux, PostScript-style preference
//! file).
//!
//! Table II: 751 keys, 120 multi-setting clusters of 550, 95.8% accuracy —
//! the largest configuration in the study (Figure 1b's auto-complete group
//! lives here). Hosts errors #15 (menu bar disappears for certain PDFs) and
//! #16 (find box missing from the tool bar).

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Menu-bar visibility (error #15's offending key).
pub const MENU_BAR: &str = "acrobat/ui/menu_bar";
/// Find-box visibility in the tool bar (error #16's offending key).
pub const FIND_BOX: &str = "acrobat/toolbar/find";

/// Builds the Acrobat Reader model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("acrobat");
    b.sessions_per_day(2.0);
    // Figure 1b: the form auto-complete trio.
    b.correct_group(
        "autocomplete",
        vec![
            KeySpec::new(
                "forms/inline_autocomplete",
                ValueKind::Toggle { initial: false },
            ),
            KeySpec::new(
                "forms/record_new_entries",
                ValueKind::Toggle { initial: true },
            ),
            KeySpec::new("forms/show_dropdown", ValueKind::Toggle { initial: true }),
        ],
        0.08,
    );
    // 114 more correct groups (80 pairs, 29 triples, 5 quads) → 115 correct;
    // 5 coupled dialogs → 5 oversized. 115/120 = 95.8%.
    b.bulk_correct_groups("view", 80, 2, 0.06);
    b.bulk_correct_groups("page", 29, 3, 0.05);
    b.bulk_correct_groups("plugin", 5, 4, 0.04);
    b.bulk_coupled_groups("dlg", 5, 2, 0.05);
    // 430 singleton churners, including the two error keys.
    b.single(
        KeySpec::new("ui/menu_bar", ValueKind::BiasedToggle { on_prob: 0.97 }),
        0.1,
    );
    b.single(
        KeySpec::new("toolbar/find", ValueKind::BiasedToggle { on_prob: 0.97 }),
        0.08,
    );
    b.bulk_singles("single", 428, 0.25);
    b.statics(31);

    let (spec, truth) = b.build();
    AppModel {
        name: "acrobat",
        display_name: "Acrobat Reader",
        category: "Document Reader",
        os: OsFlavor::Linux,
        logger: LoggerKind::File,
        spec,
        truth,
        render,
        paper_keys: 751,
        paper_multi_clusters: 120,
        paper_total_clusters: 550,
        paper_accuracy: Some(95.8),
    }
}

/// Renders the Acrobat window chrome.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("document_pane");
    shot.add_if(config.get_bool(MENU_BAR).unwrap_or(true), "menu_bar");
    shot.add_if(config.get_bool(FIND_BOX).unwrap_or(true), "find_box");
    super::show_settings(
        &mut shot,
        config,
        &[
            "acrobat/forms/inline_autocomplete",
            "acrobat/view000/k0",
            "acrobat/page000/k0",
            "acrobat/single000",
            "acrobat/single001",
        ],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn chrome_elements_follow_flags() {
        let mut config = ConfigState::new();
        let shot = render(&config);
        assert!(shot.contains("menu_bar") && shot.contains("find_box"));
        config.set(Key::new(MENU_BAR), Value::from(false));
        config.set(Key::new(FIND_BOX), Value::from(false));
        let shot = render(&config);
        assert!(!shot.contains("menu_bar") && !shot.contains("find_box"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 751);
        assert_eq!(m.spec.groups.len(), 120);
        assert_eq!(m.spec.noise.len(), 430);
        // 115 correct truth groups + 10 coupling halves.
        assert_eq!(m.truth.len(), 125);
    }
}
