//! Chrome Browser (web browser, Linux, JSON preferences file).
//!
//! Table II: 35 keys, 1 multi-setting cluster of 34, 100% accuracy.
//! Hosts errors #13 (bookmark bar missing) and #14 (home button missing).

use ocasta_repair::Screenshot;
use ocasta_trace::{KeySpec, OsFlavor, ValueKind};
use ocasta_ttkv::ConfigState;

use crate::builders::AppBuilder;
use crate::model::{AppModel, LoggerKind};

/// Shows the bookmark bar on every tab (error #13's offending key).
pub const BOOKMARK_BAR: &str = "chrome/bookmark_bar/show_on_all_tabs";
/// Shows the home button in the toolbar (error #14's offending key).
pub const HOME_BUTTON: &str = "chrome/browser/show_home_button";

/// Builds the Chrome model.
pub fn model() -> AppModel {
    let mut b = AppBuilder::new("chrome");
    b.sessions_per_day(2.0);
    // The single related pair Ocasta found for Chrome: sync account state.
    b.correct_group(
        "sync",
        vec![
            KeySpec::new("sync/enabled", ValueKind::Toggle { initial: false }),
            KeySpec::new("sync/account", ValueKind::PathName { extension: "id" }),
        ],
        0.05,
    );
    // 33 singleton settings (Chrome's flat JSON preferences churn
    // independently), including the two error keys.
    b.single(
        KeySpec::new(
            "bookmark_bar/show_on_all_tabs",
            ValueKind::BiasedToggle { on_prob: 0.97 },
        ),
        0.08,
    );
    b.single(
        KeySpec::new(
            "browser/show_home_button",
            ValueKind::BiasedToggle { on_prob: 0.97 },
        ),
        0.08,
    );
    b.bulk_singles("pref", 31, 0.1);

    let (spec, truth) = b.build();
    AppModel {
        name: "chrome",
        display_name: "Chrome Browser",
        category: "Web Browser",
        os: OsFlavor::Linux,
        logger: LoggerKind::File,
        spec,
        truth,
        render,
        paper_keys: 35,
        paper_multi_clusters: 1,
        paper_total_clusters: 34,
        paper_accuracy: Some(100.0),
    }
}

/// Renders Chrome's toolbar area.
fn render(config: &ConfigState) -> Screenshot {
    let mut shot = Screenshot::new();
    shot.add("tab_strip");
    shot.add_if(
        config.get_bool(BOOKMARK_BAR).unwrap_or(true),
        "bookmark_bar",
    );
    shot.add_if(config.get_bool(HOME_BUTTON).unwrap_or(true), "home_button");
    super::show_settings(
        &mut shot,
        config,
        &["chrome/pref000", "chrome/pref001", "chrome/sync/enabled"],
    );
    shot
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn toolbar_elements_follow_flags() {
        let mut config = ConfigState::new();
        config.set(Key::new(BOOKMARK_BAR), Value::from(true));
        config.set(Key::new(HOME_BUTTON), Value::from(false));
        let shot = render(&config);
        assert!(shot.contains("bookmark_bar"));
        assert!(!shot.contains("home_button"));
    }

    #[test]
    fn model_shape() {
        let m = model();
        assert_eq!(m.key_count(), 35);
        assert_eq!(m.spec.groups.len(), 1);
        assert_eq!(m.spec.noise.len(), 33);
    }
}
