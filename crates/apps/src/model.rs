//! The application model type.

use ocasta_repair::Screenshot;
use ocasta_trace::{generate, GeneratorConfig, OsFlavor, Trace, WorkloadSpec};
use ocasta_ttkv::{ConfigState, Key};

/// How the application's configuration store is intercepted (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoggerKind {
    /// Windows registry API hooking.
    Registry,
    /// GConf `LD_PRELOAD` shim.
    GConf,
    /// Application-private file with flush diffing.
    File,
}

impl std::fmt::Display for LoggerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LoggerKind::Registry => "Registry",
            LoggerKind::GConf => "GConf",
            LoggerKind::File => "File",
        })
    }
}

/// A modelled desktop application: its configuration schema, usage workload,
/// ground-truth setting relationships and rendered UI.
///
/// One `AppModel` corresponds to one row of the paper's Table II. The
/// workload spec drives the trace generator; the truth groups ground the
/// clustering-accuracy evaluation; the render function gives the repair tool
/// a deterministic "screen" to photograph.
#[derive(Debug, Clone)]
pub struct AppModel {
    /// Key prefix and identifier (e.g. `"word"`).
    pub name: &'static str,
    /// Table II display name (e.g. `"MS Word"`).
    pub display_name: &'static str,
    /// Table II category (e.g. `"Word Processor"`).
    pub category: &'static str,
    /// Which OS the app ran on in the study.
    pub os: OsFlavor,
    /// How its configuration accesses are intercepted.
    pub logger: LoggerKind,
    /// Usage behaviour for the trace generator.
    pub spec: WorkloadSpec,
    /// Ground-truth related-setting groups (absolute keys). Settings not
    /// mentioned here are ground-truth singletons.
    pub truth: Vec<Vec<Key>>,
    /// Deterministic render of the app's visible state.
    pub render: fn(&ConfigState) -> Screenshot,
    /// The paper's Table II `#Keys` for this app (used in reports).
    pub paper_keys: usize,
    /// The paper's Table II multi-setting cluster count.
    pub paper_multi_clusters: usize,
    /// The paper's Table II total cluster count.
    pub paper_total_clusters: usize,
    /// The paper's Table II accuracy (`None` = N/A).
    pub paper_accuracy: Option<f64>,
}

impl AppModel {
    /// Generates this application's usage trace.
    ///
    /// `days` and `seed` parameterise the deployment; the same inputs always
    /// produce the same trace.
    pub fn generate_trace(&self, days: u64, seed: u64) -> Trace {
        generate(
            &GeneratorConfig::new(self.display_name, days, seed),
            std::slice::from_ref(&self.spec),
        )
    }

    /// `true` if `cluster` is *correct* per the paper's conservative
    /// criterion: every pair of settings in it is dependent, i.e. the
    /// cluster is contained in one ground-truth group.
    pub fn cluster_is_correct(&self, cluster: &[Key]) -> bool {
        if cluster.len() <= 1 {
            return true;
        }
        self.truth
            .iter()
            .any(|group| cluster.iter().all(|k| group.contains(k)))
    }

    /// Total keys in the model (groups + noise + churn + static).
    pub fn key_count(&self) -> usize {
        self.spec.key_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_trace::{KeySpec, SettingGroup, ValueKind};

    fn tiny_model() -> AppModel {
        let mut spec = WorkloadSpec::new("tiny");
        spec.groups.push(SettingGroup::new(
            "pair",
            vec![
                KeySpec::new("a", ValueKind::Toggle { initial: true }),
                KeySpec::new("b", ValueKind::Toggle { initial: true }),
            ],
            0.5,
        ));
        AppModel {
            name: "tiny",
            display_name: "Tiny",
            category: "Test",
            os: OsFlavor::Linux,
            logger: LoggerKind::File,
            spec,
            truth: vec![vec![Key::new("tiny/a"), Key::new("tiny/b")]],
            render: |_| Screenshot::new(),
            paper_keys: 2,
            paper_multi_clusters: 1,
            paper_total_clusters: 1,
            paper_accuracy: Some(100.0),
        }
    }

    #[test]
    fn correctness_criterion() {
        let model = tiny_model();
        assert!(model.cluster_is_correct(&[Key::new("tiny/a"), Key::new("tiny/b")]));
        assert!(
            model.cluster_is_correct(&[Key::new("tiny/a")]),
            "singletons are correct"
        );
        assert!(
            !model.cluster_is_correct(&[Key::new("tiny/a"), Key::new("tiny/z")]),
            "a cluster spanning unrelated keys is incorrect"
        );
    }

    #[test]
    fn trace_generation_is_reproducible() {
        let model = tiny_model();
        assert_eq!(model.generate_trace(10, 1), model.generate_trace(10, 1));
    }

    #[test]
    fn logger_kinds_display() {
        assert_eq!(LoggerKind::Registry.to_string(), "Registry");
        assert_eq!(LoggerKind::GConf.to_string(), "GConf");
        assert_eq!(LoggerKind::File.to_string(), "File");
    }
}
