//! Property-based tests over the facade pipeline.

use proptest::prelude::*;

use ocasta::{ClusterParams, Key, Ocasta, OcastaStream, TimePrecision, Timestamp, Ttkv, Value};

/// A random mutation log over a small key space.
fn mutations() -> impl Strategy<Value = Vec<(u8, u64, i64, bool)>> {
    prop::collection::vec(
        (
            0u8..10,
            0u64..2_000_000,
            any::<i64>(),
            prop::bool::weighted(0.1),
        ),
        1..120,
    )
}

fn build(entries: &[(u8, u64, i64, bool)]) -> Ttkv {
    let mut store = Ttkv::new();
    for &(k, t, v, delete) in entries {
        let key = Key::new(format!("app/k{k}"));
        let t = Timestamp::from_millis(t);
        if delete {
            store.delete(t, key);
        } else {
            store.write(t, key, Value::from(v));
        }
    }
    store
}

proptest! {
    /// Clustering always partitions exactly the modified keys.
    #[test]
    fn clustering_partitions_modified_keys(entries in mutations()) {
        let store = build(&entries);
        let clustering = Ocasta::default().cluster_store(&store);
        let mut clustered: Vec<&str> = clustering
            .clusters()
            .iter()
            .flatten()
            .map(Key::as_str)
            .collect();
        clustered.sort_unstable();
        let mut modified: Vec<&str> = store.modified_keys().map(Key::as_str).collect();
        modified.sort_unstable();
        prop_assert_eq!(clustered, modified);
    }

    /// `cluster_of` is consistent with the cluster list.
    #[test]
    fn membership_is_consistent(entries in mutations()) {
        let store = build(&entries);
        let clustering = Ocasta::default().cluster_store(&store);
        for cluster in clustering.clusters() {
            for key in cluster {
                prop_assert_eq!(
                    clustering.cluster_of(key.as_str()).expect("member resolves"),
                    cluster.as_slice()
                );
            }
        }
        prop_assert!(clustering.cluster_of("app/never-written").is_none());
    }

    /// Loosening the correlation threshold never increases the cluster
    /// count (the dendrogram-cut monotonicity, observed end to end).
    #[test]
    fn threshold_monotonicity_end_to_end(entries in mutations()) {
        let store = build(&entries);
        let mut last = usize::MAX;
        for threshold in [2.0, 1.5, 1.0, 0.5] {
            let params = ClusterParams {
                correlation_threshold: threshold,
                ..ClusterParams::default()
            };
            let count = Ocasta::new(params).cluster_store(&store).len();
            prop_assert!(count <= last, "threshold {}: {} > {}", threshold, count, last);
            last = count;
        }
    }

    /// Second-quantised clustering is invariant under sub-second timestamp
    /// jitter: shifting every mutation within its own second cannot change
    /// the result when the engine quantises to seconds anyway.
    #[test]
    fn quantised_clustering_ignores_subsecond_jitter(
        entries in mutations(),
        jitter in 0u64..999,
    ) {
        let base = build(&entries);
        let shifted = build(
            &entries
                .iter()
                .map(|&(k, t, v, d)| (k, t / 1000 * 1000 + jitter.min(999), v, d))
                .collect::<Vec<_>>(),
        );
        let engine = Ocasta::default(); // quantises to seconds
        let a = engine.cluster_store(&base);
        let b = engine.cluster_store(&shifted);
        prop_assert_eq!(a.clusters().len(), b.clusters().len());
    }

    /// The tentpole invariant at the facade level: a stream fed the same
    /// mutations — in any batch split, with live queries and watermark
    /// seals along the way — serves *exactly* the clustering that
    /// `Ocasta::cluster_store` computes over the recorded store. Same
    /// keys, same clusters, same order.
    #[test]
    fn streaming_clustering_equals_batch_clustering(
        entries in mutations(),
        batch_size in 1usize..20,
        threshold in 0.5f64..2.0,
        precision_ms in any::<bool>(),
    ) {
        let precision = if precision_ms {
            TimePrecision::Milliseconds
        } else {
            TimePrecision::Seconds
        };
        let params = ClusterParams {
            correlation_threshold: threshold,
            ..ClusterParams::default()
        };
        let engine = Ocasta::new(params).with_precision(precision);

        let store = build(&entries);
        let batch = engine.cluster_store(&store);

        // Stream the same mutations in time order (the live feed), split
        // into arbitrary batches, sealing after each batch and serving a
        // throwaway query mid-stream.
        let mut ordered = entries.clone();
        ordered.sort_by_key(|&(_, t, _, _)| t);
        let mut stream = OcastaStream::new(&engine);
        for chunk in ordered.chunks(batch_size) {
            for &(k, t, _, _) in chunk {
                stream.absorb_write(
                    &Key::new(format!("app/k{k}")),
                    Timestamp::from_millis(t),
                );
            }
            stream.seal();
            let _ = stream.clustering();
        }
        let live = stream.clustering();
        prop_assert_eq!(&live.clustering, &batch);
        prop_assert_eq!(live.horizon.events as usize, entries.len());

        // A second stream fed fully out of order (no seals) agrees too.
        let mut unordered = OcastaStream::new(&engine);
        for &(k, t, _, _) in &entries {
            unordered.absorb_write(
                &Key::new(format!("app/k{k}")),
                Timestamp::from_millis(t),
            );
        }
        prop_assert_eq!(&unordered.clustering().clustering, &batch);
    }

    /// Replay → persist → load → recluster: persistence is transparent to
    /// the pipeline.
    #[test]
    fn persistence_is_transparent_to_clustering(entries in mutations()) {
        let store = build(&entries);
        let reloaded = Ttkv::load_from_str(&store.save_to_string()).unwrap();
        let engine = Ocasta::default().with_precision(TimePrecision::Milliseconds);
        let a = engine.cluster_store(&store);
        let b = engine.cluster_store(&reloaded);
        prop_assert_eq!(a.clusters(), b.clusters());
    }
}
