//! The repair service: concurrent repair sessions over a live fleet store.
//!
//! This closes the paper's loop at fleet scale. PR 1 made ingestion
//! concurrent ([`ocasta_fleet::ingest_into`]), PR 2 made the clustering
//! continuously available ([`crate::OcastaStream`]); this tier makes the
//! *repair* — the point of the whole system (§III-B, §IV-C) — run against
//! both, while they keep moving:
//!
//! 1. a fleet of machines streams into one caller-owned [`ShardedTtkv`];
//! 2. the streaming clustering absorbs the tapped event flow and serves a
//!    cluster catalog at any moment;
//! 3. each simulated user pins a session: the catalog (stamped with its
//!    stream horizon) plus a per-shard-atomic **epoch pin** of the history
//!    ([`ShardedTtkv::pin_epoch`]) taken *at or after* that horizon — an
//!    O(shards) grab of shared sealed segments, not a store copy;
//! 4. an error scenario is injected into the user's pinned snapshot and
//!    the parallel rollback search runs to exhaustion — N sessions
//!    concurrently, each with its own trial-executor pool — while
//!    ingestion continues underneath;
//! 5. with a retention policy on the fleet engine, a sweeper prunes the
//!    live shards to a rolling horizon the whole time — clamped through a
//!    shared [`HorizonGuard`] to the sessions' pin, which is registered
//!    *before* the snapshot is taken, so pinned searches stay valid by
//!    construction.
//!
//! The session lifecycle, snapshot-consistency argument and the
//! parallel-search equivalence proof live in `DESIGN.md §5.8`; the
//! retention ordering argument is `DESIGN.md §5.9`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ocasta_apps::{scenarios, ErrorScenario};
use ocasta_cluster::ClusterParams;
use ocasta_fleet::{
    ingest_live, EpochSnapshot, FleetMetrics, FleetReport, IngestOptions, ShardedTtkv, WriteLanes,
};
use ocasta_obs::Stopwatch;
use ocasta_repair::{
    CatalogHorizon, ClusterCatalog, HorizonGuard, HorizonPin, RepairSession, SearchConfig,
    SearchStrategy, SessionReport,
};
use ocasta_ttkv::{TimeDelta, Timestamp, TtkvStats};

use crate::fleet::{fleet_machines, FleetRunConfig};
use crate::metrics::{ServiceMetrics, StreamMetrics};
use crate::pipeline::Ocasta;
use crate::stream::OcastaStream;

/// Configuration of one repair-service run: the fleet it ingests, the
/// users it repairs for, and the search it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairServiceConfig {
    /// The fleet to ingest (machines, days, seed, apps, engine knobs). An
    /// empty `apps` list is replaced by the applications of the chosen
    /// scenarios, so every session's error has history to roll back to.
    pub fleet: FleetRunConfig,
    /// Concurrent repair sessions (the paper's user study had 19 humans;
    /// the service runs them at production concurrency).
    pub users: usize,
    /// Concurrent trial executors per session ([`ocasta_repair::parallel_search`]).
    pub search_threads: usize,
    /// Rollback search order.
    pub strategy: SearchStrategy,
    /// Clustering parameters for the live catalog (window also bounds the
    /// search's transaction grouping).
    pub params: ClusterParams,
    /// Which Table III errors the users hit, assigned round-robin.
    pub scenario_ids: Vec<usize>,
    /// How many mutation events the live clustering must have absorbed
    /// before the catalog is pinned (`u64::MAX` waits for ingestion to
    /// finish — useful when the outcome must not depend on timing).
    pub min_catalog_events: u64,
    /// The user's "error appeared after" search bound, as days before the
    /// end of the pinned snapshot (`None` searches the whole history).
    pub start_bound_days: Option<u64>,
}

impl Default for RepairServiceConfig {
    fn default() -> Self {
        RepairServiceConfig {
            fleet: FleetRunConfig {
                machines: 8,
                days: 14,
                apps: Vec::new(),
                ..FleetRunConfig::default()
            },
            users: 4,
            search_threads: 2,
            strategy: SearchStrategy::Dfs,
            params: ClusterParams::default(),
            // Single-setting errors whose applications render their healthy
            // default when the setting is absent — fixable against any
            // snapshot prefix, which is what a mid-ingest pin serves.
            scenario_ids: vec![13, 15, 11, 12],
            min_catalog_events: 2_000,
            start_bound_days: Some(7),
        }
    }
}

/// One user's repaired (or not) error.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRepair {
    /// Which Table III error the user hit.
    pub scenario_id: usize,
    /// The error's Table III description.
    pub description: String,
    /// Size of the cluster whose rollback fixed it, if fixed.
    pub fixed_cluster_size: Option<usize>,
    /// The session's full report (search outcome, pinned horizon, timing).
    pub report: SessionReport,
}

/// What one repair-service run did.
#[derive(Debug, Clone)]
pub struct RepairServiceRun {
    /// The fleet ingestion report (the whole fleet, not just the pinned
    /// prefix).
    pub ingest: FleetReport,
    /// The stream horizon the shared catalog was pinned from.
    pub horizon: CatalogHorizon,
    /// Clusters in the pinned catalog (after singleton fallbacks).
    pub catalog_clusters: usize,
    /// Multi-setting clusters in the pinned catalog.
    pub catalog_multi: usize,
    /// `true` if the catalog and snapshot were pinned while ingestion was
    /// still running (the fleet kept growing under the sessions).
    pub pinned_mid_ingest: bool,
    /// Access statistics of the pinned history snapshot.
    pub snapshot_stats: TtkvStats,
    /// The retention pin the sessions held: the oldest timestamp their
    /// searches could touch, registered with the [`HorizonGuard`] *before*
    /// the snapshot was taken so no concurrent retention sweep could prune
    /// past it (`DESIGN.md §5.9`). Epoch when the search is unbounded.
    pub session_pin: Timestamp,
    /// Where the sessions' shared pin stood when it was released: as each
    /// session's remaining search plan shrank, its progress reports
    /// advanced the pin ([`ocasta_ttkv::HorizonPin::advance`]) to the
    /// minimum bound any still-running session needed, so long sessions
    /// stop starving fleet-wide retention. Always `>= session_pin`.
    pub final_pin: Timestamp,
    /// Every user's session, in user order.
    pub sessions: Vec<UserRepair>,
}

impl RepairServiceRun {
    /// Number of sessions that repaired their error.
    pub fn fixed_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| s.report.is_fixed()).count()
    }
}

/// The observer bundles a repair-service run can carry, one per tier.
///
/// All `None` (the [`Default`]) observes nothing. Everything here is
/// purely observational: handles record wall-clock readings and counts,
/// nothing reads them back, and a run's outcome is identical with any
/// combination attached (`DESIGN.md §5.11`).
#[derive(Debug, Clone, Default)]
pub struct ServiceObservers {
    /// Ingestion-tier metrics (batches, WAL timings, sweep stalls).
    pub fleet: Option<Arc<FleetMetrics>>,
    /// Session-tier metrics (open/step/commit latencies, pin clamps).
    pub service: Option<Arc<ServiceMetrics>>,
    /// Streaming-clustering metrics (absorb/query latencies, epoch).
    pub stream: Option<Arc<StreamMetrics>>,
}

/// Runs the repair service: ingest the fleet, pin a catalog + snapshot from
/// the live tiers, and drive every user's repair session concurrently.
///
/// # Errors
///
/// Unknown scenario ids or application names, or `users == 0`.
pub fn run_repair_service(config: &RepairServiceConfig) -> Result<RepairServiceRun, String> {
    run_repair_service_observed(config, &ServiceObservers::default())
}

/// [`run_repair_service`] with per-tier metric bundles attached.
///
/// # Errors
///
/// Same conditions as [`run_repair_service`].
pub fn run_repair_service_observed(
    config: &RepairServiceConfig,
    observers: &ServiceObservers,
) -> Result<RepairServiceRun, String> {
    if config.users == 0 {
        return Err("repair needs --users >= 1".into());
    }
    let chosen = resolve_scenarios(&config.scenario_ids)?;
    let mut fleet_cfg = config.fleet.clone();
    if fleet_cfg.apps.is_empty() {
        fleet_cfg.apps = scenario_apps(&chosen);
    }
    let machines = fleet_machines(&fleet_cfg)?;
    let engine = Ocasta::new(config.params);
    let sharded =
        ShardedTtkv::with_seal_threshold(fleet_cfg.engine.shards, fleet_cfg.engine.seal_threshold);
    let lanes = WriteLanes::new(fleet_cfg.engine.shards);
    let guard = HorizonGuard::new();
    let mut stream = OcastaStream::new(&engine);
    if let Some(stream_metrics) = &observers.stream {
        stream.set_metrics(stream_metrics.clone());
    }
    let service_metrics = observers.service.as_deref();

    // The pin-advance coordinator, shared by every session thread. Each
    // session reports, after every trial wave, the oldest history its
    // *remaining* plan still needs (`RepairSession::run_observed`); its
    // slot records that bound, and the shared pin advances to the minimum
    // over all slots — never past what any live session might still roll
    // back to. Both live outside the thread scope so session threads can
    // borrow them; the pin itself is parked here once registered.
    let needs: Mutex<Vec<Timestamp>> = Mutex::new(Vec::new());
    let shared_pin: Mutex<Option<HorizonPin<'_>>> = Mutex::new(None);

    let run = std::thread::scope(|scope| {
        let ingest_handle = scope.spawn(|| {
            let options = IngestOptions {
                tap: Some(&lanes),
                guard: Some(&guard),
                metrics: observers.fleet.as_deref(),
                ..IngestOptions::default()
            };
            ingest_live(&machines, &fleet_cfg.engine, &sharded, options)
                .expect("no wal lane, no wal errors")
        });

        // Feed the live clustering until enough of the fleet has streamed
        // past to pin a catalog from.
        loop {
            stream.drain_lanes(&lanes);
            let finished = ingest_handle.is_finished();
            if stream.horizon().events >= config.min_catalog_events || finished {
                if finished {
                    stream.drain_lanes(&lanes); // absorb the tail
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // Pin, in order: retention pin first, catalog second, epoch pin
        // third. The retention pin covers the oldest history any session's
        // bounded search can touch, so a concurrent retention sweep can
        // never prune a version out from under the epoch about to be
        // pinned; catalog-before-epoch-pin keeps the pinned history at or
        // beyond the catalog's horizon (DESIGN.md §5.8, §5.9, §5.13).
        // The sessions' bound will be `inject_at − days`, and injections
        // happen after the snapshot's end, so a bound computed from the
        // current frontier is a safe (earlier) stand-in. The slack below
        // it is owned by `SearchConfig::oldest_history_needed`.
        let oldest_needed = match config.start_bound_days {
            None => Timestamp::EPOCH,
            Some(days) => {
                let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                SearchConfig {
                    start_time: Some(frontier.saturating_sub(TimeDelta::from_days(days))),
                    window: TimeDelta::from_millis(config.params.window_ms),
                    ..SearchConfig::default()
                }
                .oldest_history_needed()
            }
        };
        let pin = guard.pin(oldest_needed);
        let session_pin = pin.timestamp();
        // Arm the coordinator: slots start at the registration-time pin so
        // an unreported session holds the line. Lock order everywhere is
        // slots, then pin (slots guard dropped first).
        *needs
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = vec![session_pin; config.users];
        *shared_pin
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(pin);
        let live = stream.clustering();
        // The epoch pin is O(shards + tails) under the stripe locks:
        // sealed segments are shared by reference with every session, and
        // later sweeps replace — never mutate — pinned segments, so the
        // pin cannot observe them. One materialization here feeds the run
        // report; each session folds its own copy of the pin in its own
        // thread.
        let pinned = sharded.pin_epoch();
        let snapshot = pinned.materialize();
        // Sampled *after* the snapshot, so "mid-ingest" is conservative:
        // if ingestion is still running now, the pinned history was
        // certainly a prefix of a still-growing fleet.
        let pinned_mid_ingest = !ingest_handle.is_finished();
        let mut catalog = live.catalog();
        for scenario in &chosen {
            for key in scenario.offending_keys() {
                catalog.ensure_singleton(&key);
            }
        }
        let catalog_clusters = catalog.len();
        let catalog_multi = catalog.clusters().iter().filter(|c| c.len() > 1).count();

        // Every user's session runs concurrently — against pinned state,
        // while ingestion (if unfinished) keeps appending underneath.
        let session_handles: Vec<_> = (0..config.users)
            .map(|user| {
                let scenario = chosen[user % chosen.len()].clone();
                let catalog = catalog.clone();
                // Each session holds its own clone of the epoch pin — an
                // O(shards) Arc grab, not a store copy — and materializes
                // its private sandbox (the store it injects the error
                // into and searches) inside its own thread.
                let pin = pinned.clone();
                let needs = &needs;
                let shared_pin = &shared_pin;
                scope.spawn(move || {
                    run_user_session(
                        config,
                        user,
                        scenario,
                        pin,
                        catalog,
                        session_pin,
                        needs,
                        shared_pin,
                        service_metrics,
                    )
                })
            })
            .collect();
        let sessions: Vec<UserRepair> = session_handles
            .into_iter()
            .map(|h| h.join().expect("repair session panicked"))
            .collect();
        // Sessions own their snapshots; the (possibly advanced) pin is
        // released only now, so the retained window never moves out from
        // under a live search.
        let final_pin = {
            let pin = shared_pin
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .take()
                .expect("the pin is taken exactly once, after all sessions joined");
            pin.timestamp()
            // `pin` drops here: protection released.
        };
        let ingest = ingest_handle.join().expect("ingest thread panicked");

        RepairServiceRun {
            ingest,
            horizon: catalog.horizon(),
            catalog_clusters,
            catalog_multi,
            pinned_mid_ingest,
            snapshot_stats: snapshot.stats(),
            session_pin,
            final_pin,
            sessions,
        }
    });
    Ok(run)
}

/// One user: materialize the epoch pin, inject the scenario into the
/// private store, search, report.
#[allow(clippy::too_many_arguments)]
fn run_user_session(
    config: &RepairServiceConfig,
    user: usize,
    scenario: ErrorScenario,
    pin: EpochSnapshot,
    catalog: ClusterCatalog,
    session_pin: Timestamp,
    needs: &Mutex<Vec<Timestamp>>,
    shared_pin: &Mutex<Option<HorizonPin<'_>>>,
    metrics: Option<&ServiceMetrics>,
) -> UserRepair {
    let open_started = Stopwatch::start_if(metrics.is_some());
    let mut store = pin.materialize();
    // The sandbox is owned now; releasing the pin lets a later sweep's
    // replaced segments free as soon as every other holder drops too.
    drop(pin);
    let end = store.last_mutation_time().unwrap_or(Timestamp::EPOCH);
    // Stagger injections so concurrent users' errors are distinct events.
    let inject_at = end + TimeDelta::from_mins(5 * (user as u64 + 1));
    scenario.inject(&mut store, inject_at);
    let mut search_config = SearchConfig {
        strategy: config.strategy,
        window: TimeDelta::from_millis(config.params.window_ms),
        start_time: config
            .start_bound_days
            .map(|days| inject_at.saturating_sub(TimeDelta::from_days(days))),
        end_time: None,
        trial_cost: scenario.trial_cost,
    };
    // If the guard clamped our pin up (a sweep had already pruned deeper
    // before this run registered), history below the pin is gone
    // fleet-wide: bound the search to what provably exists.
    let clamped = search_config.start_time.map(|wanted| {
        let safe = wanted.max(search_config.earliest_safe_start(session_pin));
        let clamped = safe > wanted;
        (safe, clamped)
    });
    if let Some((safe, was_clamped)) = clamped {
        search_config.start_time = Some(safe);
        if was_clamped {
            if let Some(m) = metrics {
                m.pin_clamps.inc();
            }
        }
    }
    let session = RepairSession::new(format!("user{user:02}"), store, catalog, search_config)
        .with_threads(config.search_threads);
    if let (Some(m), Some(sw)) = (metrics, open_started) {
        m.session_open.record_duration(sw.elapsed());
    }
    let step_started = Stopwatch::start_if(metrics.is_some());
    let report = session.run_observed(&scenario.trial(), &scenario.oracle(), |needed| {
        // Record this session's shrinking need, then advance the shared
        // pin to the minimum over everyone — the oldest history any live
        // session might still roll back to. Slots guard dropped before
        // taking the pin lock (fixed lock order, no deadlock).
        let target = {
            let mut slots = needs
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // Reports are monotone per session, but max() keeps the slot
            // monotone even under a buggy or reordered observer.
            slots[user] = slots[user].max(needed);
            slots.iter().copied().min().expect("users >= 1")
        };
        if let Some(pin) = shared_pin
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .as_mut()
        {
            pin.advance(target);
        }
        if let Some(m) = metrics {
            m.pin_advances.inc();
        }
    });
    if let (Some(m), Some(sw)) = (metrics, step_started) {
        m.session_step.record_duration(sw.elapsed());
    }
    let commit_started = Stopwatch::start_if(metrics.is_some());
    let repair = UserRepair {
        scenario_id: scenario.id,
        description: scenario.description.to_owned(),
        fixed_cluster_size: report.outcome.fix.as_ref().map(|f| f.keys.len()),
        report,
    };
    if let (Some(m), Some(sw)) = (metrics, commit_started) {
        m.session_commit.record_duration(sw.elapsed());
        m.sessions.inc();
    }
    repair
}

/// Resolves scenario ids against the Table III catalog, in the given order.
fn resolve_scenarios(ids: &[usize]) -> Result<Vec<ErrorScenario>, String> {
    if ids.is_empty() {
        return Err("repair needs at least one scenario".into());
    }
    let all = scenarios();
    ids.iter()
        .map(|id| {
            all.iter()
                .find(|s| s.id == *id)
                .cloned()
                .ok_or_else(|| format!("unknown scenario id {id} (Table III has 1-16)"))
        })
        .collect()
}

/// The distinct applications the chosen scenarios run on, in first-use
/// order — the default fleet workload for a service run.
fn scenario_apps(chosen: &[ErrorScenario]) -> Vec<String> {
    let mut apps: Vec<String> = Vec::new();
    for scenario in chosen {
        if !apps.iter().any(|a| a == scenario.app) {
            apps.push(scenario.app.to_owned());
        }
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> RepairServiceConfig {
        RepairServiceConfig {
            fleet: FleetRunConfig {
                machines: 4,
                days: 8,
                seed: 11,
                engine: ocasta_fleet::FleetConfig {
                    shards: 4,
                    ingest_threads: 2,
                    batch_size: 64,
                    ..ocasta_fleet::FleetConfig::default()
                },
                ..FleetRunConfig::default()
            },
            users: 3,
            search_threads: 2,
            scenario_ids: vec![13, 15],
            // Deterministic content: pin only after ingestion finished.
            min_catalog_events: u64::MAX,
            // Unbounded search: the earliest version of the offending
            // cluster is always reachable, so a rollback that predates the
            // key entirely (healthy default render) is always tried.
            start_bound_days: None,
            ..RepairServiceConfig::default()
        }
    }

    #[test]
    fn concurrent_sessions_fix_their_errors() {
        let run = run_repair_service(&small_config()).expect("service runs");
        assert_eq!(run.sessions.len(), 3);
        assert_eq!(run.fixed_sessions(), 3, "{:?}", run.sessions);
        // Round-robin assignment over the two scenarios.
        let ids: Vec<usize> = run.sessions.iter().map(|s| s.scenario_id).collect();
        assert_eq!(ids, vec![13, 15, 13]);
        // The catalog was pinned from a real stream horizon.
        assert!(run.horizon.events > 0);
        assert!(run.catalog_clusters > 0);
        assert!(run.snapshot_stats.writes > 0);
        // Users 0 and 2 hit the same scenario against the same pinned
        // state (injection times differ, so only fixability must agree).
        assert_eq!(
            run.sessions[0].report.is_fixed(),
            run.sessions[2].report.is_fixed()
        );
    }

    #[test]
    fn mid_ingest_pin_is_reported_and_sessions_still_run() {
        let config = RepairServiceConfig {
            min_catalog_events: 200,
            users: 2,
            ..small_config()
        };
        let run = run_repair_service(&config).expect("service runs");
        assert_eq!(run.sessions.len(), 2);
        // Whether the pin landed mid-ingest depends on scheduling; either
        // way every session must complete with a usable report, and the
        // offending keys are searchable thanks to the singleton fallback.
        for session in &run.sessions {
            assert!(session.report.outcome.total_trials > 0);
            assert!(session.report.is_fixed(), "{session:?}");
        }
    }

    #[test]
    fn retention_keeps_sessions_correct_while_bounding_the_snapshot() {
        use ocasta_fleet::RetentionPolicy;
        use ocasta_ttkv::TimeDelta;

        // Reference: the same service run with retention off.
        let mut base = small_config();
        base.fleet.days = 16;
        base.start_bound_days = Some(3);
        let reference = run_repair_service(&base).expect("service runs");

        // Retention on: keep 5 days behind the frontier — deeper than any
        // session's 3-day search bound, which the pin enforces regardless.
        let mut config = base.clone();
        config.fleet.engine.retention = Some(RetentionPolicy {
            retain: TimeDelta::from_days(5),
            min_interval: TimeDelta::from_days(1),
        });
        let run = run_repair_service(&config).expect("service runs");

        let retention = run.ingest.retention.expect("policy was set");
        assert!(retention.sweeps > 0, "{retention:?}");
        assert!(retention.reclaimed.pruned_versions > 0);
        let horizon = retention.horizon.expect("swept");
        assert!(
            horizon <= run.session_pin,
            "sweeps never pass the session pin: {horizon} vs {}",
            run.session_pin,
        );
        assert!(
            run.session_pin > Timestamp::EPOCH,
            "bounded search pins late"
        );
        assert!(
            run.final_pin >= run.session_pin,
            "the shared pin only advances: {} vs {}",
            run.final_pin,
            run.session_pin,
        );

        // The pruned snapshot is strictly smaller in memory...
        assert!(
            run.snapshot_stats.approx_bytes < reference.snapshot_stats.approx_bytes,
            "{} vs {}",
            run.snapshot_stats.approx_bytes,
            reference.snapshot_stats.approx_bytes,
        );
        // ...while every session repairs identically to the no-retention
        // run: same fix, same trial and screenshot counts.
        assert_eq!(run.sessions.len(), reference.sessions.len());
        for (with, without) in run.sessions.iter().zip(&reference.sessions) {
            assert_eq!(with.scenario_id, without.scenario_id);
            assert_eq!(with.report.is_fixed(), without.report.is_fixed());
            assert!(with.report.is_fixed(), "{with:?}");
            let (a, b) = (&with.report.outcome, &without.report.outcome);
            assert_eq!(
                a.fix.as_ref().map(|f| f.version),
                b.fix.as_ref().map(|f| f.version)
            );
            assert_eq!(
                a.fix.as_ref().map(|f| &f.keys),
                b.fix.as_ref().map(|f| &f.keys)
            );
            assert_eq!(a.trials_to_fix, b.trials_to_fix);
            assert_eq!(a.total_trials, b.total_trials);
            assert_eq!(a.screenshots_to_fix, b.screenshots_to_fix);
            assert_eq!(a.total_screenshots, b.total_screenshots);
        }
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let mut config = small_config();
        config.users = 0;
        assert!(run_repair_service(&config).is_err());

        let mut config = small_config();
        config.scenario_ids = vec![99];
        assert!(run_repair_service(&config)
            .unwrap_err()
            .contains("scenario id 99"));

        let mut config = small_config();
        config.scenario_ids = Vec::new();
        assert!(run_repair_service(&config).is_err());
    }

    #[test]
    fn scenario_apps_deduplicate_in_order() {
        let chosen = resolve_scenarios(&[15, 16, 13]).unwrap();
        assert_eq!(scenario_apps(&chosen), vec!["acrobat", "chrome"]);
    }
}
