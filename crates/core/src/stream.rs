//! The streaming pipeline: clusters that are continuously available while
//! events pour in.
//!
//! The batch pipeline ([`Ocasta::cluster_store`]) stops the world: record a
//! full history, re-read every key's mutations, window, count, cluster.
//! [`OcastaStream`] keeps the analytics *live*: it absorbs mutation events
//! as they arrive (straight from a fleet ingestion via
//! [`ocasta_fleet::WriteLanes`], from a [`ocasta_trace::TraceOp`] stream,
//! or one event at a time), maintains the co-modification statistics
//! incrementally, and serves the current clustering at any moment by
//! running HAC over a snapshot of the live correlation state.
//!
//! Every answer names the event horizon it reflects — an epoch counter,
//! the number of absorbed events and the watermark — so a caller can tell
//! *which* prefix of the stream a clustering describes.
//!
//! The invariant that makes this safe to ship, enforced by the equivalence
//! property suites: after absorbing the same mutations, in any batch
//! split, [`OcastaStream::clustering`] equals [`Ocasta::cluster_store`]
//! **exactly** — same keys, same clusters, same order (see
//! `DESIGN.md §5.7`).

use std::collections::HashMap;
use std::sync::Arc;

use ocasta_cluster::WriteEvent;
use ocasta_cluster::{cluster_correlations, IncrementalCorrelations};
use ocasta_fleet::WriteLanes;
use ocasta_obs::Stopwatch;
use ocasta_repair::{CatalogHorizon, ClusterCatalog};
use ocasta_trace::TraceOp;
use ocasta_ttkv::{Key, Timestamp};

use crate::metrics::StreamMetrics;
use crate::pipeline::{Clustering, Ocasta};

/// The event horizon a streamed clustering reflects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHorizon {
    /// Absorption epoch: bumped once per non-empty absorbed batch/drain.
    pub epoch: u64,
    /// Mutation events absorbed so far.
    pub events: u64,
    /// Sealed time: results at or below this are final (milliseconds).
    pub watermark_ms: u64,
    /// Latest event time absorbed, if any (milliseconds).
    pub max_time_ms: Option<u64>,
}

/// A clustering served from the live stream, stamped with its horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamClustering {
    /// The partition of every key mutated so far.
    pub clustering: Clustering,
    /// Which prefix of the stream it reflects.
    pub horizon: StreamHorizon,
}

impl StreamClustering {
    /// Pins this live answer as a repair-session catalog: the clusters plus
    /// a [`CatalogHorizon`] stamp naming the stream prefix they reflect.
    /// This is the hand-off point between the streaming tier and the repair
    /// service tier (`DESIGN.md §5.8`).
    pub fn catalog(&self) -> ClusterCatalog {
        ClusterCatalog::new(
            self.clustering.clusters().to_vec(),
            CatalogHorizon {
                epoch: self.horizon.epoch,
                events: self.horizon.events,
                watermark_ms: self.horizon.watermark_ms,
            },
        )
    }
}

/// Online clustering over a live mutation stream.
///
/// # Examples
///
/// ```
/// use ocasta::{Ocasta, OcastaStream, Timestamp};
///
/// let mut stream = OcastaStream::new(&Ocasta::default());
/// for burst in 0..3u64 {
///     let t = Timestamp::from_secs(burst * 1000);
///     stream.absorb_write(&"mail/mark_seen".into(), t);
///     stream.absorb_write(&"mail/mark_seen_timeout".into(), t);
///     stream.seal(); // end of batch: everything so far is final
/// }
/// let live = stream.clustering();
/// assert_eq!(live.clustering.cluster_of("mail/mark_seen").unwrap().len(), 2);
/// assert_eq!(live.horizon.events, 6);
/// ```
#[derive(Debug, Clone)]
pub struct OcastaStream {
    engine: Ocasta,
    /// Keys in arrival order; `index` inverts it.
    keys: Vec<Key>,
    index: HashMap<Key, usize>,
    incremental: IncrementalCorrelations,
    epoch: u64,
    /// Optional observer bundle; purely observational (see
    /// `DESIGN.md §5.11`) — never read back by the pipeline.
    metrics: Option<Arc<StreamMetrics>>,
}

impl OcastaStream {
    /// Creates a stream serving the same parameters (window, threshold,
    /// linkage, precision) as the given batch engine — the pairing the
    /// equivalence tests compare.
    pub fn new(engine: &Ocasta) -> Self {
        OcastaStream {
            engine: engine.clone(),
            keys: Vec::new(),
            index: HashMap::new(),
            incremental: IncrementalCorrelations::new(engine.params().window_ms),
            epoch: 0,
            metrics: None,
        }
    }

    /// Attaches a [`StreamMetrics`] bundle: absorb/query latencies, batch
    /// and event counts, and the epoch gauge get recorded from here on.
    /// Purely observational — answers are identical with or without it.
    pub fn set_metrics(&mut self, metrics: Arc<StreamMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The batch engine this stream mirrors.
    pub fn engine(&self) -> &Ocasta {
        &self.engine
    }

    /// The current event horizon.
    pub fn horizon(&self) -> StreamHorizon {
        StreamHorizon {
            epoch: self.epoch,
            events: self.incremental.events_observed(),
            watermark_ms: self.incremental.watermark_ms(),
            max_time_ms: self.incremental.max_time_ms(),
        }
    }

    /// Distinct keys mutated so far.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Absorbs one mutation: `key` changed at `time`. The timestamp is
    /// quantised to the engine's precision, exactly as the batch path
    /// quantises store histories.
    pub fn absorb_write(&mut self, key: &Key, time: Timestamp) {
        let item = match self.index.get(key) {
            Some(&item) => item,
            None => {
                let item = self.keys.len();
                self.keys.push(key.clone());
                self.index.insert(key.clone(), item);
                item
            }
        };
        let time_ms = self.engine.precision().apply(time).as_millis();
        self.incremental.observe(WriteEvent::new(item, time_ms));
    }

    /// Absorbs one trace op (reads are skipped — they carry no
    /// co-modification signal).
    pub fn absorb_op(&mut self, op: &TraceOp) {
        if let Some(event) = op.as_mutation() {
            self.absorb_write(&event.key, event.timestamp);
        }
    }

    /// Absorbs a batch of `(key, time)` mutation pairs (the
    /// [`WriteLanes`] vocabulary); a non-empty batch bumps the epoch, so
    /// the epoch counts data arrivals, not poll iterations.
    pub fn absorb_batch<I>(&mut self, batch: I) -> usize
    where
        I: IntoIterator<Item = (Key, Timestamp)>,
    {
        let started = Stopwatch::start_if(self.metrics.is_some());
        let mut absorbed = 0;
        for (key, time) in batch {
            self.absorb_write(&key, time);
            absorbed += 1;
        }
        if absorbed > 0 {
            self.epoch += 1;
            if let (Some(m), Some(started)) = (&self.metrics, started) {
                m.absorb.record_duration(started.elapsed());
                m.absorb_batches.inc();
                m.absorb_events.add(absorbed as u64);
                m.epoch.set(self.epoch);
            }
        }
        absorbed
    }

    /// Drains a fleet ingestion's analytics lanes into the stream; returns
    /// how many mutations were absorbed. Call repeatedly while
    /// [`ocasta_fleet::ingest_tapped`] runs to keep the clustering fresh.
    pub fn drain_lanes(&mut self, lanes: &WriteLanes) -> usize {
        self.absorb_batch(lanes.drain())
    }

    /// Promises that no future event is older than `watermark`: seals the
    /// prefix, keeping per-event work bounded by the open window.
    pub fn advance_watermark(&mut self, watermark: Timestamp) {
        self.incremental
            .advance_watermark(self.engine.precision().apply(watermark).as_millis());
    }

    /// Seals everything absorbed so far (watermark = latest event time):
    /// right after a source reports a batch boundary, or at end of stream.
    pub fn seal(&mut self) {
        if let Some(max) = self.incremental.max_time_ms() {
            self.incremental.advance_watermark(max);
        }
    }

    /// Serves the clustering as of *right now*, stamped with its horizon.
    ///
    /// Cost is O(sealed state + unsealed backlog + HAC over the key
    /// population). Everything at or below the watermark is pre-folded
    /// into sparse counts, so for feeds that seal as they go (a
    /// time-ordered live tail with [`advance_watermark`](Self::advance_watermark),
    /// or [`seal`](Self::seal) at batch boundaries) a query never rescans
    /// history — the `stream` bench's flat query cost. A feed that *cannot*
    /// seal mid-run — concurrent fleet machines interleave simulated time
    /// arbitrarily, so no sound mid-run watermark exists — still gets an
    /// exact answer from the optimistic snapshot, paying O(events absorbed
    /// since the last seal) for it.
    pub fn clustering(&self) -> StreamClustering {
        let started = Stopwatch::start_if(self.metrics.is_some());
        // Streaming discovered keys in arrival order; the batch pipeline
        // numbers them in sorted-name order. Relabel onto the batch index
        // space so HAC tie-breaking — and therefore the partition — is
        // identical.
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_by(|&a, &b| self.keys[a].cmp(&self.keys[b]));
        let mut perm = vec![0usize; self.keys.len()];
        for (rank, &arrival) in order.iter().enumerate() {
            perm[arrival] = rank;
        }
        let sorted_keys: Vec<Key> = order.iter().map(|&i| self.keys[i].clone()).collect();

        let correlations = self.incremental.snapshot().relabeled(&perm);
        let partition = cluster_correlations(&correlations, self.engine.params());
        let served = StreamClustering {
            clustering: Clustering::new(sorted_keys, partition),
            horizon: self.horizon(),
        };
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.clustering.record_duration(started.elapsed());
        }
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Ttkv, Value};

    /// Writes that exercise pairs, noise and deletes.
    fn sample_mutations() -> Vec<(Key, Timestamp, Option<Value>)> {
        let mut muts = Vec::new();
        for burst in 0..4u64 {
            let t = Timestamp::from_secs(burst * 500);
            muts.push((Key::new("app/a"), t, Some(Value::from(burst as i64))));
            muts.push((Key::new("app/b"), t, Some(Value::from(1))));
        }
        muts.push((
            Key::new("app/noise"),
            Timestamp::from_secs(123),
            Some(Value::from(1)),
        ));
        muts.push((Key::new("app/noise"), Timestamp::from_secs(456), None));
        muts
    }

    fn batch_store() -> Ttkv {
        let mut store = Ttkv::new();
        for (key, t, value) in sample_mutations() {
            match value {
                Some(v) => store.write(t, key, v),
                None => store.delete(t, key),
            }
        }
        store
    }

    #[test]
    fn streaming_equals_batch_on_the_same_input() {
        let engine = Ocasta::default();
        let mut stream = OcastaStream::new(&engine);
        for (key, t, _) in sample_mutations() {
            stream.absorb_write(&key, t);
        }
        let live = stream.clustering();
        let batch = engine.cluster_store(&batch_store());
        assert_eq!(live.clustering, batch);
    }

    #[test]
    fn horizon_tracks_epochs_events_and_watermark() {
        let mut stream = OcastaStream::new(&Ocasta::default());
        assert_eq!(stream.horizon().epoch, 0);
        let batch: Vec<(Key, Timestamp)> = sample_mutations()
            .into_iter()
            .map(|(k, t, _)| (k, t))
            .collect();
        let absorbed = stream.absorb_batch(batch);
        assert_eq!(absorbed, 10);
        let h = stream.horizon();
        assert_eq!(h.epoch, 1);
        assert_eq!(h.events, 10);
        // An empty drain (an idle poll) is not a data arrival.
        assert_eq!(stream.absorb_batch(Vec::new()), 0);
        assert_eq!(stream.horizon().epoch, 1);
        assert_eq!(h.watermark_ms, 0, "nothing sealed yet");
        stream.seal();
        assert_eq!(stream.horizon().watermark_ms, 1_500_000);
    }

    #[test]
    fn sealing_does_not_change_answers_only_finality() {
        let engine = Ocasta::default();
        let mut sealed = OcastaStream::new(&engine);
        let mut unsealed = OcastaStream::new(&engine);
        // Sealing after every event requires a time-ordered feed (the
        // watermark promise); unsealed absorption does not.
        let mut ordered = sample_mutations();
        ordered.sort_by_key(|(_, t, _)| *t);
        for (key, t, _) in ordered {
            sealed.absorb_write(&key, t);
            sealed.seal();
            unsealed.absorb_write(&key, t);
        }
        assert_eq!(
            sealed.clustering().clustering,
            unsealed.clustering().clustering
        );
    }

    #[test]
    fn queries_are_serveable_at_every_prefix() {
        let engine = Ocasta::default();
        let mut stream = OcastaStream::new(&engine);
        let mut store = Ttkv::new();
        for (key, t, value) in sample_mutations() {
            stream.absorb_write(&key, t);
            match value {
                Some(v) => store.write(t, key, v),
                None => store.delete(t, key),
            }
            // At every prefix the stream serves exactly the batch answer
            // over the store so far.
            assert_eq!(stream.clustering().clustering, engine.cluster_store(&store));
        }
    }

    #[test]
    fn catalog_pins_clusters_and_horizon() {
        let mut stream = OcastaStream::new(&Ocasta::default());
        for (key, t, _) in sample_mutations() {
            stream.absorb_write(&key, t);
        }
        stream.seal();
        let live = stream.clustering();
        let catalog = live.catalog();
        assert_eq!(catalog.clusters().len(), live.clustering.len());
        assert!(catalog.covers(&Key::new("app/a")));
        assert_eq!(catalog.horizon().events, live.horizon.events);
        assert_eq!(catalog.horizon().watermark_ms, live.horizon.watermark_ms);
    }

    #[test]
    fn drain_lanes_pulls_from_a_fleet_tap() {
        use ocasta_fleet::IngestTap;
        use ocasta_trace::{AccessEvent, TraceOp};
        let lanes = WriteLanes::new(2);
        let op = TraceOp::Mutation(AccessEvent::write(
            Timestamp::from_secs(5),
            "app/k",
            Value::from(1),
        ));
        lanes.on_batch(0, std::slice::from_ref(&op));
        let mut stream = OcastaStream::new(&Ocasta::default());
        assert_eq!(stream.drain_lanes(&lanes), 1);
        assert_eq!(stream.key_count(), 1);
        assert_eq!(stream.horizon().events, 1);
    }
}
