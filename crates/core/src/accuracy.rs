//! Clustering-accuracy evaluation against application ground truth
//! (Table II).

use ocasta_apps::AppModel;
use ocasta_cluster::ClusterParams;
use ocasta_ttkv::{Key, TimePrecision};

use crate::pipeline::{Clustering, Ocasta};

/// Accuracy results for one application (one Table II row).
#[derive(Debug, Clone, PartialEq)]
pub struct AppAccuracy {
    /// Display name (e.g. `"MS Word"`).
    pub app: String,
    /// Table II category.
    pub category: String,
    /// Distinct keys observed in the trace.
    pub keys: usize,
    /// Clusters with more than one setting.
    pub multi_clusters: usize,
    /// All clusters, singletons included.
    pub total_clusters: usize,
    /// Multi-setting clusters whose members are all mutually dependent.
    pub correct_multi: usize,
    /// Incorrect multi clusters (contain unrelated settings — oversized).
    pub oversized: usize,
    /// Correct multi clusters that are strict subsets of a larger truth
    /// group (undersized; still *correct* by the paper's criterion).
    pub undersized: usize,
    /// The paper's accuracy for this app (`None` = N/A).
    pub paper_accuracy: Option<f64>,
}

impl AppAccuracy {
    /// Accuracy: correct multi clusters over all multi clusters, or `None`
    /// when the app produced no multi clusters (Table II's "N/A").
    pub fn accuracy(&self) -> Option<f64> {
        if self.multi_clusters == 0 {
            None
        } else {
            Some(100.0 * self.correct_multi as f64 / self.multi_clusters as f64)
        }
    }
}

/// Evaluates one application: generates its usage trace, clusters it and
/// scores every multi-setting cluster against the model's ground truth.
pub fn evaluate_model(
    model: &AppModel,
    days: u64,
    seed: u64,
    params: &ClusterParams,
) -> AppAccuracy {
    let trace = model.generate_trace(days, seed);
    let store = trace.replay(TimePrecision::Seconds);
    let clustering = Ocasta::new(*params).cluster_store(&store);
    score(model, &clustering, store.len())
}

/// Scores an existing clustering against a model's ground truth.
pub fn score(model: &AppModel, clustering: &Clustering, observed_keys: usize) -> AppAccuracy {
    let mut multi = 0usize;
    let mut correct = 0usize;
    let mut oversized = 0usize;
    let mut undersized = 0usize;
    for cluster in clustering.multi_clusters() {
        multi += 1;
        if model.cluster_is_correct(cluster) {
            correct += 1;
            if is_strict_subset_of_truth(model, cluster) {
                undersized += 1;
            }
        } else {
            oversized += 1;
        }
    }
    AppAccuracy {
        app: model.display_name.to_owned(),
        category: model.category.to_owned(),
        keys: observed_keys,
        multi_clusters: multi,
        total_clusters: clustering.len(),
        correct_multi: correct,
        oversized,
        undersized,
        paper_accuracy: model.paper_accuracy,
    }
}

fn is_strict_subset_of_truth(model: &AppModel, cluster: &[Key]) -> bool {
    model
        .truth
        .iter()
        .any(|group| cluster.iter().all(|k| group.contains(k)) && cluster.len() < group.len())
}

/// Aggregate accuracy over several apps: the paper reports both the
/// *overall* ratio (total correct / total multi = 88.6%) and the *mean*
/// per-app accuracy (72.3%).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccuracySummary {
    /// Total multi-setting clusters across apps.
    pub multi_clusters: usize,
    /// Total correct multi-setting clusters.
    pub correct_multi: usize,
    /// Mean of per-app accuracies (apps with no multi clusters excluded).
    pub mean_accuracy: f64,
}

impl AccuracySummary {
    /// Builds the summary from per-app results.
    pub fn from_apps(apps: &[AppAccuracy]) -> Self {
        let multi: usize = apps.iter().map(|a| a.multi_clusters).sum();
        let correct: usize = apps.iter().map(|a| a.correct_multi).sum();
        let accuracies: Vec<f64> = apps.iter().filter_map(AppAccuracy::accuracy).collect();
        let mean = if accuracies.is_empty() {
            0.0
        } else {
            accuracies.iter().sum::<f64>() / accuracies.len() as f64
        };
        AccuracySummary {
            multi_clusters: multi,
            correct_multi: correct,
            mean_accuracy: mean,
        }
    }

    /// Overall accuracy: total correct over total multi clusters (the
    /// paper's 88.6%).
    pub fn overall_accuracy(&self) -> f64 {
        if self.multi_clusters == 0 {
            0.0
        } else {
            100.0 * self.correct_multi as f64 / self.multi_clusters as f64
        }
    }
}

/// Evaluates all 11 applications with the default parameters and a fixed
/// per-app seed (deterministic; regenerates Table II).
pub fn evaluate_all(days: u64) -> Vec<AppAccuracy> {
    ocasta_apps::all_models()
        .iter()
        .enumerate()
        .map(|(i, model)| evaluate_model(model, days, 1000 + i as u64, &ClusterParams::default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_apps::model_by_name;

    #[test]
    fn chrome_clusters_cleanly() {
        let model = model_by_name("chrome").unwrap();
        let result = evaluate_model(&model, 40, 7, &ClusterParams::default());
        assert_eq!(result.accuracy(), Some(100.0), "{result:?}");
        assert_eq!(result.multi_clusters, 1);
        assert!(result.total_clusters >= 25, "{result:?}");
    }

    #[test]
    fn gedit_single_multi_cluster_is_oversized() {
        let model = model_by_name("gedit").unwrap();
        let result = evaluate_model(&model, 40, 7, &ClusterParams::default());
        assert_eq!(result.multi_clusters, 1, "{result:?}");
        assert_eq!(result.accuracy(), Some(0.0));
        assert_eq!(result.oversized, 1);
    }

    #[test]
    fn eog_has_no_multi_clusters() {
        let model = model_by_name("eog").unwrap();
        let result = evaluate_model(&model, 40, 7, &ClusterParams::default());
        assert_eq!(result.accuracy(), None);
        assert_eq!(result.multi_clusters, 0);
    }

    #[test]
    fn summary_combines_overall_and_mean() {
        let apps = vec![
            AppAccuracy {
                app: "A".into(),
                category: "X".into(),
                keys: 10,
                multi_clusters: 9,
                total_clusters: 12,
                correct_multi: 9,
                oversized: 0,
                undersized: 0,
                paper_accuracy: None,
            },
            AppAccuracy {
                app: "B".into(),
                category: "Y".into(),
                keys: 10,
                multi_clusters: 1,
                total_clusters: 3,
                correct_multi: 0,
                oversized: 1,
                undersized: 0,
                paper_accuracy: None,
            },
        ];
        let summary = AccuracySummary::from_apps(&apps);
        assert_eq!(summary.overall_accuracy(), 90.0);
        assert_eq!(summary.mean_accuracy, 50.0);
    }
}
