//! Metric bundles for the facade tiers: the repair service and the
//! streaming clustering.
//!
//! Like [`ocasta_fleet::FleetMetrics`], these are **pure observers**: the
//! handles are pre-registered [`ocasta_obs`] primitives that record
//! wall-clock readings and counts, and nothing in any pipeline ever reads
//! them back. Attaching a bundle to a run changes no decision, no
//! ordering, no output byte — the seed-determinism suite holds `-o` output
//! byte-identical with metrics on and off. The architecture (and the
//! fixed-bucket histogram rationale) is `DESIGN.md §5.11`.

use std::sync::Arc;

use ocasta_obs::{Counter, Gauge, Histogram, Registry};

/// Metric handles for the repair service tier (`DESIGN.md §5.8`): the
/// per-session lifecycle latencies and the retention-pin clamp events.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// `service.session.open_us` — session setup: scenario injection into
    /// the pinned snapshot plus search construction.
    pub session_open: Arc<Histogram>,
    /// `service.session.step_us` — the rollback search itself (trial loop
    /// to exhaustion or fix).
    pub session_step: Arc<Histogram>,
    /// `service.session.commit_us` — result extraction and report
    /// assembly after the search returns.
    pub session_commit: Arc<Histogram>,
    /// `service.sessions` — repair sessions run.
    pub sessions: Arc<Counter>,
    /// `service.pin_clamps` — sessions whose search bound was clamped up
    /// to the retention pin (history below it was already pruned
    /// fleet-wide before the session registered).
    pub pin_clamps: Arc<Counter>,
    /// `service.pin_advances` — progress reports that fed the shared
    /// retention pin: after each trial wave a session re-publishes the
    /// oldest history its remaining plan needs, and the pin advances to
    /// the minimum over all live sessions (`DESIGN.md §5.9`).
    pub pin_advances: Arc<Counter>,
}

impl ServiceMetrics {
    /// Registers every service series in `registry` and returns the
    /// bundle of live handles.
    pub fn register(registry: &Registry) -> Self {
        ServiceMetrics {
            session_open: registry.histogram("service.session.open_us"),
            session_step: registry.histogram("service.session.step_us"),
            session_commit: registry.histogram("service.session.commit_us"),
            sessions: registry.counter("service.sessions"),
            pin_clamps: registry.counter("service.pin_clamps"),
            pin_advances: registry.counter("service.pin_advances"),
        }
    }
}

/// Metric handles for the streaming clustering facade
/// ([`crate::OcastaStream`]).
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// `stream.absorb_us` — time spent absorbing one non-empty batch.
    pub absorb: Arc<Histogram>,
    /// `stream.clustering_us` — time to serve one clustering snapshot
    /// (correlation snapshot + HAC).
    pub clustering: Arc<Histogram>,
    /// `stream.absorb.batches` — non-empty batches absorbed.
    pub absorb_batches: Arc<Counter>,
    /// `stream.absorb.events` — mutation events absorbed.
    pub absorb_events: Arc<Counter>,
    /// `stream.epoch` — the stream's current absorption epoch.
    pub epoch: Arc<Gauge>,
}

impl StreamMetrics {
    /// Registers every stream series in `registry` and returns the bundle
    /// of live handles.
    pub fn register(registry: &Registry) -> Self {
        StreamMetrics {
            absorb: registry.histogram("stream.absorb_us"),
            clustering: registry.histogram("stream.clustering_us"),
            absorb_batches: registry.counter("stream.absorb.batches"),
            absorb_events: registry.counter("stream.absorb.events"),
            epoch: registry.gauge("stream.epoch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_every_series_once() {
        let registry = Registry::new();
        let service = ServiceMetrics::register(&registry);
        let stream = StreamMetrics::register(&registry);
        service.sessions.inc();
        stream.epoch.set(3);
        let json = registry.snapshot_json();
        for name in [
            "service.session.open_us",
            "service.session.step_us",
            "service.session.commit_us",
            "service.sessions",
            "service.pin_clamps",
            "service.pin_advances",
            "stream.absorb_us",
            "stream.clustering_us",
            "stream.absorb.batches",
            "stream.absorb.events",
            "stream.epoch",
        ] {
            assert!(json.contains(&format!("\"{name}\"")), "{name} in {json}");
        }
        // Registering again hands back the same underlying handles.
        let again = ServiceMetrics::register(&registry);
        assert_eq!(again.sessions.get(), 1);
    }
}
