//! The end-to-end Ocasta pipeline: TTKV history → co-modification events →
//! clusters of related settings.

use std::collections::BTreeMap;

use ocasta_cluster::{cluster_events, ClusterParams, PartitionStats, WriteEvent};
use ocasta_ttkv::{Key, TimePrecision, Ttkv};

/// The Ocasta engine: clustering configuration from black-box observations.
///
/// Wraps the paper's tunable knobs — the sliding co-modification window, the
/// correlation threshold, the linkage criterion and the timestamp precision
/// of the trace infrastructure — and turns a recorded [`Ttkv`] history into
/// named clusters of related settings.
///
/// # Examples
///
/// ```
/// use ocasta::{Ocasta, Timestamp, Ttkv, Value};
///
/// let mut store = Ttkv::new();
/// for burst in 0..3u64 {
///     let t = Timestamp::from_secs(burst * 1000);
///     store.write(t, "mail/mark_seen", Value::from(true));
///     store.write(t, "mail/mark_seen_timeout", Value::from(1500));
/// }
/// store.write(Timestamp::from_secs(77), "mail/window_width", Value::from(800));
///
/// let clustering = Ocasta::default().cluster_store(&store);
/// assert_eq!(clustering.multi_clusters().count(), 1);
/// assert_eq!(clustering.cluster_of("mail/mark_seen").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ocasta {
    params: ClusterParams,
    precision: TimePrecision,
}

impl Ocasta {
    /// Creates an engine with explicit clustering parameters.
    pub fn new(params: ClusterParams) -> Self {
        Ocasta {
            params,
            precision: TimePrecision::default(),
        }
    }

    /// Sets the timestamp precision applied to mutation times before
    /// windowing (the deployed loggers recorded whole seconds; millisecond
    /// precision is the paper's suggested improvement).
    pub fn with_precision(mut self, precision: TimePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// The clustering parameters in use.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// The timestamp precision applied before windowing.
    pub fn precision(&self) -> TimePrecision {
        self.precision
    }

    /// Extracts the per-key write events the clustering consumes: every
    /// mutation (write or deletion) of every modified key.
    pub fn write_events(&self, store: &Ttkv) -> (Vec<Key>, Vec<WriteEvent>) {
        let keys: Vec<Key> = store.modified_keys().cloned().collect();
        let mut events = Vec::new();
        for (idx, key) in keys.iter().enumerate() {
            if let Some(record) = store.record(key.as_str()) {
                for t in record.mutation_times() {
                    events.push(WriteEvent::new(idx, self.precision.apply(t).as_millis()));
                }
            }
        }
        (keys, events)
    }

    /// Clusters every modified key in the store.
    pub fn cluster_store(&self, store: &Ttkv) -> Clustering {
        let (keys, events) = self.write_events(store);
        let partition = cluster_events(keys.len(), &events, &self.params);
        Clustering::new(keys, partition)
    }

    /// Clusters only the keys under an application prefix (how the paper
    /// evaluates per-application accuracy).
    pub fn cluster_app(&self, store: &Ttkv, app_prefix: &Key) -> Clustering {
        let keys: Vec<Key> = store
            .keys_under(app_prefix)
            .filter(|k| {
                store
                    .record(k.as_str())
                    .is_some_and(|r| r.modifications() > 0)
            })
            .cloned()
            .collect();
        let mut events = Vec::new();
        for (idx, key) in keys.iter().enumerate() {
            if let Some(record) = store.record(key.as_str()) {
                for t in record.mutation_times() {
                    events.push(WriteEvent::new(idx, self.precision.apply(t).as_millis()));
                }
            }
        }
        let partition = cluster_events(keys.len(), &events, &self.params);
        Clustering::new(keys, partition)
    }
}

/// The result of clustering a store: a partition of its modified keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Vec<Key>>,
    membership: BTreeMap<Key, usize>,
}

impl Clustering {
    pub(crate) fn new(keys: Vec<Key>, partition: Vec<Vec<usize>>) -> Self {
        let clusters: Vec<Vec<Key>> = partition
            .into_iter()
            .map(|cluster| cluster.into_iter().map(|i| keys[i].clone()).collect())
            .collect();
        let mut membership = BTreeMap::new();
        for (idx, cluster) in clusters.iter().enumerate() {
            for key in cluster {
                membership.insert(key.clone(), idx);
            }
        }
        Clustering {
            clusters,
            membership,
        }
    }

    /// All clusters (singletons included), ordered by smallest member.
    pub fn clusters(&self) -> &[Vec<Key>] {
        &self.clusters
    }

    /// Clusters with more than one setting (Table II's focus).
    pub fn multi_clusters(&self) -> impl Iterator<Item = &Vec<Key>> {
        self.clusters.iter().filter(|c| c.len() > 1)
    }

    /// The cluster containing `key`, if the key was modified.
    pub fn cluster_of(&self, key: &str) -> Option<&[Key]> {
        self.membership
            .get(key)
            .map(|&idx| self.clusters[idx].as_slice())
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if no keys were clustered.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Partition statistics (Figure 3's cluster-size metrics).
    pub fn stats(&self) -> PartitionStats {
        let mut stats = PartitionStats::default();
        for cluster in &self.clusters {
            stats.clusters += 1;
            stats.items += cluster.len();
            stats.max_cluster_size = stats.max_cluster_size.max(cluster.len());
            if cluster.len() > 1 {
                stats.multi_clusters += 1;
                stats.items_in_multi += cluster.len();
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Timestamp, Value};

    fn store_with_pair_and_noise() -> Ttkv {
        let mut store = Ttkv::new();
        for burst in 0..4u64 {
            let t = Timestamp::from_secs(burst * 500);
            store.write(t, "app/a", Value::from(burst as i64));
            store.write(t, "app/b", Value::from(burst as i64 * 10));
        }
        store.write(Timestamp::from_secs(123), "app/noise", Value::from(1));
        store.write(Timestamp::from_secs(456), "app/noise", Value::from(2));
        store.write(Timestamp::from_secs(789), "other/key", Value::from(true));
        store.read("app/readonly");
        store
    }

    #[test]
    fn clusters_pair_and_leaves_noise_alone() {
        let clustering = Ocasta::default().cluster_store(&store_with_pair_and_noise());
        assert_eq!(clustering.len(), 3);
        assert_eq!(clustering.multi_clusters().count(), 1);
        assert_eq!(clustering.cluster_of("app/a").unwrap().len(), 2);
        assert_eq!(clustering.cluster_of("app/noise").unwrap().len(), 1);
        assert!(
            clustering.cluster_of("app/readonly").is_none(),
            "read-only keys excluded"
        );
    }

    #[test]
    fn cluster_app_scopes_to_prefix() {
        let clustering =
            Ocasta::default().cluster_app(&store_with_pair_and_noise(), &Key::new("app"));
        assert!(clustering.cluster_of("other/key").is_none());
        assert_eq!(clustering.len(), 2);
    }

    #[test]
    fn precision_affects_windowing() {
        let mut store = Ttkv::new();
        // 1.2 s apart: same window at second precision (1s quantised ⇒ gap
        // 1s ≤ 1s), different at millisecond precision (1.2s > 1s).
        for burst in 0..3u64 {
            let t = Timestamp::from_millis(burst * 100_000);
            store.write(t, "a/x", Value::from(1));
            store.write(
                t + ocasta_ttkv::TimeDelta::from_millis(1_200),
                "a/y",
                Value::from(2),
            );
        }
        let coarse = Ocasta::default().cluster_store(&store);
        assert_eq!(coarse.multi_clusters().count(), 1);
        let fine = Ocasta::default()
            .with_precision(TimePrecision::Milliseconds)
            .cluster_store(&store);
        assert_eq!(fine.multi_clusters().count(), 0);
    }

    #[test]
    fn clustering_a_pruned_store_invents_no_mutations() {
        // Regression: pruning used to synthesise a baseline version at the
        // horizon that `mutation_times` reported as a real write — so
        // *every* pruned key appeared co-modified at the horizon and the
        // clustering glued unrelated keys together.
        let mut store = Ttkv::new();
        // Two unrelated keys, never modified together.
        store.write(Timestamp::from_secs(100), "app/a", Value::from(1));
        store.write(Timestamp::from_secs(5_000), "app/a", Value::from(2));
        store.write(Timestamp::from_secs(900), "app/b", Value::from(1));
        store.write(Timestamp::from_secs(7_000), "app/b", Value::from(2));
        let engine = Ocasta::default();
        let before = engine.cluster_store(&store);
        assert_eq!(before.multi_clusters().count(), 0);

        let mut pruned = store.clone();
        pruned.prune_before(Timestamp::from_secs(2_000));

        // No event time exists in the pruned store that the original
        // history did not contain.
        let (_, original_events) = engine.write_events(&store);
        let original_times: std::collections::BTreeSet<u64> =
            original_events.iter().map(|e| e.time_ms).collect();
        let (_, pruned_events) = engine.write_events(&pruned);
        for event in &pruned_events {
            assert!(
                original_times.contains(&event.time_ms),
                "phantom event at {}ms",
                event.time_ms
            );
        }
        // And the partition is unchanged: still no multi-setting cluster,
        // where the phantom horizon write used to merge app/a with app/b.
        let after = engine.cluster_store(&pruned);
        assert_eq!(after.multi_clusters().count(), 0);
    }

    #[test]
    fn stats_summarise_partition() {
        let clustering = Ocasta::default().cluster_store(&store_with_pair_and_noise());
        let stats = clustering.stats();
        assert_eq!(stats.clusters, 3);
        assert_eq!(stats.multi_clusters, 1);
        assert_eq!(stats.items, 4);
        assert_eq!(stats.mean_multi_cluster_size(), 2.0);
    }
}
