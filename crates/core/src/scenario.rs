//! Running Table III error scenarios end to end (Table IV, Figure 2).

use ocasta_apps::ErrorScenario;
use ocasta_cluster::{ClusterParams, Linkage};
use ocasta_repair::{search, singleton_clusters, SearchConfig, SearchOutcome, SearchStrategy};
use ocasta_ttkv::{TimeDelta, TimePrecision, Timestamp, Ttkv};

use crate::pipeline::Ocasta;

/// How a scenario run is set up (defaults mirror §VI-B: error injected 14
/// days before the end of the trace, search start bound at the injection,
/// DFS, paper-default clustering parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Search order.
    pub strategy: SearchStrategy,
    /// How many days before the end of the trace the error is injected.
    pub injection_age_days: u64,
    /// Extra failed manual-fix attempts written after the injection
    /// (Figure 2b's x-axis).
    pub spurious_attempts: u64,
    /// Clustering parameters.
    pub params: ClusterParams,
    /// The user's search start bound, as days before the end of the trace
    /// (`None` = search the entire history; Figure 2c sweeps this).
    pub start_bound_days: Option<u64>,
    /// Trace generation seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            strategy: SearchStrategy::Dfs,
            injection_age_days: 14,
            spurious_attempts: 0,
            params: ClusterParams::default(),
            start_bound_days: Some(14),
            seed: 0,
        }
    }
}

impl ScenarioConfig {
    /// The paper's tuned parameters for scenarios that need them
    /// (error #2: threshold 1 + 30 s window; error #4: threshold 1).
    pub fn tuned_for(scenario: &ErrorScenario) -> ClusterParams {
        match scenario.id {
            2 => ClusterParams {
                window_ms: 30_000,
                correlation_threshold: 1.0,
                linkage: Linkage::Complete,
            },
            4 => ClusterParams {
                correlation_threshold: 1.0,
                ..ClusterParams::default()
            },
            _ => ClusterParams::default(),
        }
    }
}

/// The outcome of one scenario run (one Table IV row's ingredients).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Which Table III error was run.
    pub scenario_id: usize,
    /// The repair-search result.
    pub search: SearchOutcome,
    /// Size of the cluster whose rollback fixed the error, if fixed.
    pub fixed_cluster_size: Option<usize>,
    /// Whether the run used singleton clusters (the NoClust baseline).
    pub noclust: bool,
}

impl ScenarioOutcome {
    /// `true` if the error was repaired.
    pub fn is_fixed(&self) -> bool {
        self.search.is_fixed()
    }
}

/// Builds the scenario's TTKV: generate the application trace, replay it at
/// second precision, inject the error and any spurious fix attempts.
///
/// Mutations the workload would have made to the *offending keys after the
/// injection* are dropped: the premise of §VI-B is that the error persists
/// until the user notices it (a real application with a broken setting does
/// not keep rewriting that setting with healthy values). All other activity
/// after the injection is kept — it is exactly what makes older errors
/// harder to find (Figure 2a).
///
/// Returns the store and the injection time.
pub fn prepare_store(scenario: &ErrorScenario, config: &ScenarioConfig) -> (Ttkv, Timestamp) {
    let model = scenario.model();
    let mut trace =
        model.generate_trace(scenario.trace_days, 100 + scenario.id as u64 + config.seed);
    let end = trace.end_time();
    let inject_at = end.saturating_sub(TimeDelta::from_days(config.injection_age_days));
    // The offending feature is quiescent throughout the whole evaluation
    // window (at least the paper's 14 days), not merely after the injection:
    // this keeps the offending cluster's lifetime modification count — and
    // therefore its position in the repair tool's sort — independent of the
    // injection age, as it is when an error is injected into a fixed
    // recorded trace (§VI-B).
    let quarantine_from =
        end.saturating_sub(TimeDelta::from_days(config.injection_age_days.max(14)));
    let offending = scenario.quarantined_keys();

    let mut store = Ttkv::new();
    for (key, &count) in trace.read_counts() {
        store.add_reads(key.clone(), count);
    }
    let precision = TimePrecision::Seconds;
    for event in trace.events() {
        if event.timestamp >= quarantine_from && offending.contains(&event.key) {
            continue;
        }
        let t = precision.apply(event.timestamp);
        match &event.mutation {
            ocasta_trace::Mutation::Write(value) => {
                store.write(t, event.key.clone(), value.clone())
            }
            ocasta_trace::Mutation::Delete => store.delete(t, event.key.clone()),
        }
    }
    scenario.inject(&mut store, inject_at);
    for attempt in 0..config.spurious_attempts {
        let at = inject_at + TimeDelta::from_mins(90 * (attempt + 1));
        scenario.spurious_write(&mut store, at, attempt);
    }
    (store, inject_at)
}

/// Runs one scenario with Ocasta's clustering.
pub fn run_scenario(scenario: &ErrorScenario, config: &ScenarioConfig) -> ScenarioOutcome {
    let (store, _inject_at) = prepare_store(scenario, config);
    let clustering = Ocasta::new(config.params).cluster_store(&store);
    run_search(
        scenario,
        config,
        &store,
        clustering.clusters().to_vec(),
        false,
    )
}

/// Runs one scenario with the NoClust baseline (singleton rollbacks).
pub fn run_noclust(scenario: &ErrorScenario, config: &ScenarioConfig) -> ScenarioOutcome {
    let (store, _inject_at) = prepare_store(scenario, config);
    let clusters = singleton_clusters(&store);
    run_search(scenario, config, &store, clusters, true)
}

fn run_search(
    scenario: &ErrorScenario,
    config: &ScenarioConfig,
    store: &Ttkv,
    clusters: Vec<Vec<ocasta_ttkv::Key>>,
    noclust: bool,
) -> ScenarioOutcome {
    let end = store.last_mutation_time().unwrap_or(Timestamp::EPOCH);
    let start_time = config
        .start_bound_days
        .map(|days| end.saturating_sub(TimeDelta::from_days(days)));
    let search_config = SearchConfig {
        strategy: config.strategy,
        window: TimeDelta::from_millis(config.params.window_ms),
        start_time,
        end_time: None,
        trial_cost: scenario.trial_cost,
    };
    let outcome = search(
        store,
        &clusters,
        &scenario.trial(),
        &scenario.oracle(),
        &search_config,
    );
    ScenarioOutcome {
        scenario_id: scenario.id,
        fixed_cluster_size: outcome.fix.as_ref().map(|f| f.keys.len()),
        search: outcome,
        noclust,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_apps::scenarios;

    fn scenario(id: usize) -> ErrorScenario {
        scenarios()
            .into_iter()
            .find(|s| s.id == id)
            .expect("id exists")
    }

    #[test]
    fn single_key_error_is_fixed_by_both() {
        let s = scenario(13); // Chrome bookmark bar
        let config = ScenarioConfig::default();
        let ocasta = run_scenario(&s, &config);
        assert!(ocasta.is_fixed(), "{:?}", ocasta.search);
        assert_eq!(ocasta.fixed_cluster_size, Some(1));
        let noclust = run_noclust(&s, &config);
        assert!(noclust.is_fixed());
    }

    #[test]
    fn multi_key_error_needs_clustering() {
        let s = scenario(7); // Explorer image window (2 offending keys)
        let config = ScenarioConfig::default();
        let ocasta = run_scenario(&s, &config);
        assert!(ocasta.is_fixed(), "{:?}", ocasta.search);
        assert_eq!(ocasta.fixed_cluster_size, Some(2));
        let noclust = run_noclust(&s, &config);
        assert!(!noclust.is_fixed(), "NoClust must fail error #7");
    }

    #[test]
    fn error2_requires_tuning() {
        let s = scenario(2);
        let default_run = run_scenario(&s, &ScenarioConfig::default());
        assert!(
            !default_run.is_fixed(),
            "error #2 should defeat the default parameters"
        );
        let tuned = ScenarioConfig {
            params: ScenarioConfig::tuned_for(&s),
            ..ScenarioConfig::default()
        };
        let tuned_run = run_scenario(&s, &tuned);
        assert!(tuned_run.is_fixed(), "{:?}", tuned_run.search);
        assert!(tuned_run.fixed_cluster_size.unwrap() >= 2);
    }

    #[test]
    fn spurious_attempts_slow_the_search_down() {
        let s = scenario(5);
        let clean = run_scenario(&s, &ScenarioConfig::default());
        let noisy = run_scenario(
            &s,
            &ScenarioConfig {
                spurious_attempts: 2,
                ..ScenarioConfig::default()
            },
        );
        assert!(clean.is_fixed() && noisy.is_fixed());
        assert!(
            noisy.search.trials_to_fix >= clean.search.trials_to_fix,
            "spurious writes should not make the search faster: {:?} vs {:?}",
            noisy.search.trials_to_fix,
            clean.search.trials_to_fix
        );
    }
}
