//! `ocasta` — command-line front end for the Ocasta reproduction.
//!
//! ```text
//! ocasta generate --app <name>... --days <n> [--seed <n>] -o trace.txt
//! ocasta stats    <trace.txt>
//! ocasta replay   <trace.txt> -o store.ttkv
//! ocasta clusters <store.ttkv> [--window <secs>] [--threshold <corr>] [--app <prefix>] [--multi-only]
//! ocasta history  <store.ttkv> <key>
//! ocasta fleet    --machines <n> --days <n> [--threads <n>] [--shards <n>]
//!                 [--batch <n>] [--app <name>...]
//!                 [--placement merged|per-machine] [--retain-days <n>]
//!                 [--wal <dir>] [--cluster] [--metrics-json <path>]
//!                 [-o store.ttkv]
//! ocasta stream   --machines <n> --days <n> [--seed <n>] [--threads <n>]
//!                 [--shards <n>] [--batch <n>] [--app <name>...]
//!                 [--window <secs>] [--threshold <corr>] [--poll-ms <n>]
//!                 [--retain-days <n>] [--metrics-json <path>] [--verify]
//! ocasta repair   --machines <n> --days <n> [--seed <n>] [--threads <n>]
//!                 [--shards <n>] [--batch <n>] [--app <name>...]
//!                 [--users <n>] [--search-threads <n>] [--scenario <id>...]
//!                 [--window <secs>] [--threshold <corr>] [--min-events <n>]
//!                 [--start-bound-days <n>] [--strategy dfs|bfs]
//!                 [--retain-days <n>] [--metrics-json <path>]
//! ocasta doctor   <wal-dir>
//! ocasta vopr     --scenario <name> [--seed <n>] | --list
//! ocasta lint     [--root <dir>] [--json]
//! ```
//!
//! Argument parsing is hand-rolled (the workspace deliberately keeps its
//! dependency set minimal); see [`Command::parse`].

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

use ocasta::fleet::{fleet_machines, parse_placement, run_fleet_observed, FleetRunConfig};
use ocasta::{
    diagnose, fleet_ingest_observed, generate, model_by_name, run_repair_service_observed,
    run_vopr, vopr_scenario_names, ClusterParams, FleetMetrics, GeneratorConfig, IngestOptions,
    Key, Ocasta, OcastaStream, Registry, RepairServiceConfig, RetentionPolicy, SearchStrategy,
    ServiceMetrics, ServiceObservers, StreamMetrics, TimePrecision, Trace, Ttkv, TtkvStats,
    WriteLanes,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match Command::parse(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match command.run() {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  ocasta generate --app <name>... --days <n> [--seed <n>] -o <trace.txt>
  ocasta stats    <trace.txt>
  ocasta replay   <trace.txt> -o <store.ttkv>
  ocasta export   <store.ttkv> -o <store.txt>
  ocasta clusters <store.ttkv> [--window <secs>] [--threshold <corr>]
                  [--app <prefix>] [--multi-only]
  ocasta history  <store.ttkv> <key>
  ocasta fleet    --machines <n> --days <n> [--seed <n>] [--threads <n>]
                  [--shards <n>] [--batch <n>] [--app <name>...]
                  [--placement merged|per-machine] [--retain-days <n>]
                  [--wal <dir>] [--cluster] [--metrics-json <path>]
                  [-o <store.ttkv>]
  ocasta stream   --machines <n> --days <n> [--seed <n>] [--threads <n>]
                  [--shards <n>] [--batch <n>] [--app <name>...]
                  [--window <secs>] [--threshold <corr>] [--poll-ms <n>]
                  [--retain-days <n>] [--metrics-json <path>] [--verify]
  ocasta repair   --machines <n> --days <n> [--seed <n>] [--threads <n>]
                  [--shards <n>] [--batch <n>] [--app <name>...]
                  [--users <n>] [--search-threads <n>] [--scenario <id>...]
                  [--window <secs>] [--threshold <corr>] [--min-events <n>]
                  [--start-bound-days <n>] [--strategy dfs|bfs]
                  [--retain-days <n>] [--metrics-json <path>]
  ocasta doctor   <wal-dir>
  ocasta vopr     --scenario <name> [--seed <n>] | --list
  ocasta lint     [--root <dir>] [--json]

applications for `generate`, `fleet`, `stream` and `repair`: outlook
evolution ie chrome word gedit eog paint acrobat explorer wmp";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Generate {
        apps: Vec<String>,
        days: u64,
        seed: u64,
        output: String,
    },
    Stats {
        trace: String,
    },
    Replay {
        trace: String,
        output: String,
    },
    Export {
        store: String,
        output: String,
    },
    Clusters {
        store: String,
        window_secs: u64,
        threshold: f64,
        app: Option<String>,
        multi_only: bool,
    },
    History {
        store: String,
        key: String,
    },
    Fleet {
        config: FleetRunConfig,
        cluster: bool,
        output: Option<String>,
        metrics_json: Option<String>,
    },
    Stream {
        config: FleetRunConfig,
        window_secs: u64,
        threshold: f64,
        poll_ms: u64,
        verify: bool,
        metrics_json: Option<String>,
    },
    Repair {
        config: RepairServiceConfig,
        metrics_json: Option<String>,
    },
    Doctor {
        dir: String,
    },
    Vopr {
        scenario: Option<String>,
        seed: u64,
        list: bool,
    },
    Lint {
        root: Option<String>,
        json: bool,
    },
}

impl Command {
    /// Parses the argument vector (without the program name).
    fn parse(args: &[String]) -> Result<Command, String> {
        let mut it = args.iter().map(String::as_str);
        let verb = it.next().ok_or("missing subcommand")?;
        let rest: Vec<&str> = it.collect();
        match verb {
            "generate" => {
                let mut apps = Vec::new();
                let mut days = None;
                let mut seed = 0u64;
                let mut output = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--app" => {
                            apps.push(value_of(&rest, &mut i)?.to_owned());
                        }
                        "--days" => days = Some(parse_days("--days", value_of(&rest, &mut i)?)?),
                        "--seed" => seed = parse_num(value_of(&rest, &mut i)?)?,
                        "-o" | "--output" => output = Some(value_of(&rest, &mut i)?.to_owned()),
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                if apps.is_empty() {
                    return Err("generate needs at least one --app".into());
                }
                Ok(Command::Generate {
                    apps,
                    days: days.ok_or("generate needs --days")?,
                    seed,
                    output: output.ok_or("generate needs -o <trace.txt>")?,
                })
            }
            "stats" => match rest.as_slice() {
                [trace] => Ok(Command::Stats {
                    trace: (*trace).to_owned(),
                }),
                _ => Err("stats takes exactly one trace file".into()),
            },
            "replay" => {
                let mut trace = None;
                let mut output = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "-o" | "--output" => output = Some(value_of(&rest, &mut i)?.to_owned()),
                        other if trace.is_none() => trace = Some(other.to_owned()),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                Ok(Command::Replay {
                    trace: trace.ok_or("replay needs a trace file")?,
                    output: output.ok_or("replay needs -o <store.ttkv>")?,
                })
            }
            "export" => {
                let mut store = None;
                let mut output = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "-o" | "--output" => output = Some(value_of(&rest, &mut i)?.to_owned()),
                        other if store.is_none() => store = Some(other.to_owned()),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                Ok(Command::Export {
                    store: store.ok_or("export needs a store file")?,
                    output: output.ok_or("export needs -o <store.txt>")?,
                })
            }
            "clusters" => {
                let mut store = None;
                let mut window_secs = 1u64;
                let mut threshold = 2.0f64;
                let mut app = None;
                let mut multi_only = false;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--window" => window_secs = parse_num(value_of(&rest, &mut i)?)?,
                        "--threshold" => {
                            threshold = value_of(&rest, &mut i)?
                                .parse()
                                .map_err(|e| format!("bad threshold: {e}"))?
                        }
                        "--app" => app = Some(value_of(&rest, &mut i)?.to_owned()),
                        "--multi-only" => multi_only = true,
                        other if store.is_none() => store = Some(other.to_owned()),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                if !(threshold > 0.0 && threshold <= 2.0) {
                    return Err(format!("threshold must be in (0, 2], got {threshold}"));
                }
                Ok(Command::Clusters {
                    store: store.ok_or("clusters needs a store file")?,
                    window_secs,
                    threshold,
                    app,
                    multi_only,
                })
            }
            "fleet" => {
                let mut config = FleetRunConfig::default();
                let mut cluster = false;
                let mut output = None;
                let mut metrics_json = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--machines" => {
                            config.machines = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--days" => config.days = parse_days("--days", value_of(&rest, &mut i)?)?,
                        "--retain-days" => {
                            config.engine.retention = Some(RetentionPolicy::keep_days(parse_days(
                                "--retain-days",
                                value_of(&rest, &mut i)?,
                            )?))
                        }
                        "--seed" => config.seed = parse_num(value_of(&rest, &mut i)?)?,
                        "--threads" => {
                            config.engine.ingest_threads =
                                parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--shards" => {
                            config.engine.shards = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--batch" => {
                            config.engine.batch_size = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--app" => config.apps.push(value_of(&rest, &mut i)?.to_owned()),
                        "--placement" => {
                            config.engine.placement = parse_placement(value_of(&rest, &mut i)?)?
                        }
                        "--wal" => config.wal_dir = Some(value_of(&rest, &mut i)?.into()),
                        "--cluster" => cluster = true,
                        "--metrics-json" => {
                            metrics_json = Some(value_of(&rest, &mut i)?.to_owned())
                        }
                        "-o" | "--output" => output = Some(value_of(&rest, &mut i)?.to_owned()),
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                if config.machines == 0 {
                    return Err("fleet needs --machines >= 1".into());
                }
                if config.days == 0 {
                    return Err("fleet needs --days >= 1".into());
                }
                Ok(Command::Fleet {
                    config,
                    cluster,
                    output,
                    metrics_json,
                })
            }
            "stream" => {
                let mut config = FleetRunConfig::default();
                let mut window_secs = 1u64;
                let mut threshold = 2.0f64;
                let mut poll_ms = 20u64;
                let mut verify = false;
                let mut metrics_json = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--machines" => {
                            config.machines = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--days" => config.days = parse_days("--days", value_of(&rest, &mut i)?)?,
                        "--retain-days" => {
                            config.engine.retention = Some(RetentionPolicy::keep_days(parse_days(
                                "--retain-days",
                                value_of(&rest, &mut i)?,
                            )?))
                        }
                        "--seed" => config.seed = parse_num(value_of(&rest, &mut i)?)?,
                        "--threads" => {
                            config.engine.ingest_threads =
                                parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--shards" => {
                            config.engine.shards = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--batch" => {
                            config.engine.batch_size = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--app" => config.apps.push(value_of(&rest, &mut i)?.to_owned()),
                        "--window" => window_secs = parse_num(value_of(&rest, &mut i)?)?,
                        "--threshold" => {
                            threshold = value_of(&rest, &mut i)?
                                .parse()
                                .map_err(|e| format!("bad threshold: {e}"))?
                        }
                        "--poll-ms" => poll_ms = parse_num(value_of(&rest, &mut i)?)?,
                        "--verify" => verify = true,
                        "--metrics-json" => {
                            metrics_json = Some(value_of(&rest, &mut i)?.to_owned())
                        }
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                if config.machines == 0 {
                    return Err("stream needs --machines >= 1".into());
                }
                if config.days == 0 {
                    return Err("stream needs --days >= 1".into());
                }
                if !(threshold > 0.0 && threshold <= 2.0) {
                    return Err(format!("threshold must be in (0, 2], got {threshold}"));
                }
                if verify && config.engine.retention.is_some() {
                    // --verify compares the streamed clustering against a
                    // batch clustering of the recorded store; a pruned
                    // store has deliberately forgotten pre-horizon
                    // mutations, so the comparison is not meaningful.
                    return Err(
                        "--verify needs the full recorded history; drop --retain-days".into(),
                    );
                }
                Ok(Command::Stream {
                    config,
                    window_secs,
                    threshold,
                    poll_ms: poll_ms.max(1),
                    verify,
                    metrics_json,
                })
            }
            "repair" => {
                let mut config = RepairServiceConfig::default();
                config.fleet.machines = 0;
                config.fleet.days = 0;
                config.scenario_ids = Vec::new();
                let mut window_secs = 1u64;
                let mut threshold = 2.0f64;
                let mut metrics_json = None;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--machines" => {
                            config.fleet.machines = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--days" => {
                            config.fleet.days = parse_days("--days", value_of(&rest, &mut i)?)?
                        }
                        "--retain-days" => {
                            config.fleet.engine.retention = Some(RetentionPolicy::keep_days(
                                parse_days("--retain-days", value_of(&rest, &mut i)?)?,
                            ))
                        }
                        "--seed" => config.fleet.seed = parse_num(value_of(&rest, &mut i)?)?,
                        "--threads" => {
                            config.fleet.engine.ingest_threads =
                                parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--shards" => {
                            config.fleet.engine.shards =
                                parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--batch" => {
                            config.fleet.engine.batch_size =
                                parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--app" => config.fleet.apps.push(value_of(&rest, &mut i)?.to_owned()),
                        "--users" => config.users = parse_num(value_of(&rest, &mut i)?)? as usize,
                        "--search-threads" => {
                            config.search_threads = parse_num(value_of(&rest, &mut i)?)? as usize
                        }
                        "--scenario" => config
                            .scenario_ids
                            .push(parse_num(value_of(&rest, &mut i)?)? as usize),
                        "--window" => window_secs = parse_num(value_of(&rest, &mut i)?)?,
                        "--threshold" => {
                            threshold = value_of(&rest, &mut i)?
                                .parse()
                                .map_err(|e| format!("bad threshold: {e}"))?
                        }
                        "--min-events" => {
                            config.min_catalog_events = parse_num(value_of(&rest, &mut i)?)?
                        }
                        "--start-bound-days" => {
                            config.start_bound_days =
                                Some(parse_days("--start-bound-days", value_of(&rest, &mut i)?)?)
                        }
                        "--strategy" => {
                            config.strategy = match value_of(&rest, &mut i)? {
                                "dfs" => SearchStrategy::Dfs,
                                "bfs" => SearchStrategy::Bfs,
                                other => {
                                    return Err(format!(
                                        "strategy must be `dfs` or `bfs`, got `{other}`"
                                    ))
                                }
                            }
                        }
                        "--metrics-json" => {
                            metrics_json = Some(value_of(&rest, &mut i)?.to_owned())
                        }
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                if config.fleet.machines == 0 {
                    return Err("repair needs --machines >= 1".into());
                }
                if config.fleet.days == 0 {
                    return Err("repair needs --days >= 1".into());
                }
                if config.users == 0 {
                    return Err("repair needs --users >= 1".into());
                }
                if !(threshold > 0.0 && threshold <= 2.0) {
                    return Err(format!("threshold must be in (0, 2], got {threshold}"));
                }
                if config.scenario_ids.is_empty() {
                    config.scenario_ids = RepairServiceConfig::default().scenario_ids;
                }
                config.params = ClusterParams {
                    window_ms: window_secs * 1000,
                    correlation_threshold: threshold,
                    ..ClusterParams::default()
                };
                Ok(Command::Repair {
                    config,
                    metrics_json,
                })
            }
            "doctor" => match rest.as_slice() {
                [dir] => Ok(Command::Doctor {
                    dir: (*dir).to_owned(),
                }),
                _ => Err("doctor takes exactly one WAL directory".into()),
            },
            "vopr" => {
                let mut scenario = None;
                let mut seed = 0u64;
                let mut list = false;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--scenario" => scenario = Some(value_of(&rest, &mut i)?.to_owned()),
                        "--seed" => seed = parse_num(value_of(&rest, &mut i)?)?,
                        "--list" => list = true,
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                if !list && scenario.is_none() {
                    return Err("vopr needs --scenario <name> (or --list)".into());
                }
                Ok(Command::Vopr {
                    scenario,
                    seed,
                    list,
                })
            }
            "lint" => {
                let mut root = None;
                let mut json = false;
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "--root" => root = Some(value_of(&rest, &mut i)?.to_owned()),
                        "--json" => json = true,
                        other => return Err(format!("unknown argument `{other}`")),
                    }
                    i += 1;
                }
                Ok(Command::Lint { root, json })
            }
            "history" => match rest.as_slice() {
                [store, key] => Ok(Command::History {
                    store: (*store).to_owned(),
                    key: (*key).to_owned(),
                }),
                _ => Err("history takes a store file and a key".into()),
            },
            other => Err(format!("unknown subcommand `{other}`")),
        }
    }

    /// Executes the command, returning its stdout text.
    fn run(&self) -> Result<String, String> {
        match self {
            Command::Generate {
                apps,
                days,
                seed,
                output,
            } => {
                let mut specs = Vec::new();
                for name in apps {
                    let model = model_by_name(name)
                        .ok_or_else(|| format!("unknown application `{name}`"))?;
                    specs.push(model.spec);
                }
                let trace = generate(&GeneratorConfig::new("cli", *days, *seed), &specs);
                let file = File::create(output).map_err(|e| format!("create {output}: {e}"))?;
                trace
                    .save(BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
                let stats = trace.stats();
                Ok(format!(
                    "wrote {output}: {} days, {} writes, {} keys\n",
                    stats.days,
                    TtkvStats::humanize(stats.writes + stats.deletes),
                    stats.keys,
                ))
            }
            Command::Stats { trace } => {
                let trace = load_trace(trace)?;
                let stats = trace.stats();
                Ok(format!(
                    "{}: {} days, {} reads, {} writes, {} deletes, {} keys\n",
                    trace.name(),
                    stats.days,
                    TtkvStats::humanize(stats.reads),
                    TtkvStats::humanize(stats.writes),
                    stats.deletes,
                    stats.keys,
                ))
            }
            Command::Replay { trace, output } => {
                let trace = load_trace(trace)?;
                let store = trace.replay(TimePrecision::Seconds);
                let file = File::create(output).map_err(|e| format!("create {output}: {e}"))?;
                store
                    .save(BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
                Ok(format!("wrote {output}: {}\n", store.stats()))
            }
            Command::Export { store, output } => {
                // Loads either format (binary v2 or text v1) and writes the
                // human-readable text v1 form — the explicit export path now
                // that `save` defaults to binary segments.
                let store = load_store(store)?;
                let file = File::create(output).map_err(|e| format!("create {output}: {e}"))?;
                store
                    .save_text(BufWriter::new(file))
                    .map_err(|e| e.to_string())?;
                Ok(format!("exported {output} (text v1): {}\n", store.stats()))
            }
            Command::Clusters {
                store,
                window_secs,
                threshold,
                app,
                multi_only,
            } => {
                let store = load_store(store)?;
                let params = ClusterParams {
                    window_ms: window_secs * 1000,
                    correlation_threshold: *threshold,
                    ..ClusterParams::default()
                };
                let engine = Ocasta::new(params);
                let clustering = match app {
                    Some(prefix) => engine.cluster_app(&store, &Key::new(prefix)),
                    None => engine.cluster_store(&store),
                };
                let mut out = String::new();
                for cluster in clustering.clusters() {
                    if *multi_only && cluster.len() < 2 {
                        continue;
                    }
                    let names: Vec<&str> = cluster.iter().map(Key::as_str).collect();
                    out.push_str(&format!("{}\t{}\n", cluster.len(), names.join(" ")));
                }
                let stats = clustering.stats();
                out.push_str(&format!(
                    "# {} clusters ({} multi-setting), mean multi size {:.2}\n",
                    stats.clusters,
                    stats.multi_clusters,
                    stats.mean_multi_cluster_size(),
                ));
                Ok(out)
            }
            Command::Fleet {
                config,
                cluster,
                output,
                metrics_json,
            } => {
                let registry = Registry::new();
                let metrics = metrics_json
                    .as_ref()
                    .map(|_| FleetMetrics::register(&registry));
                let run = run_fleet_observed(config, metrics.as_ref())?;
                // The report line already carries the retention tally
                // (sweeps, clamps, horizon, reclaimed) when a policy ran.
                let mut out = format!("{}\n", run.report);
                out.push_str(&format!("store: {}\n", run.store.stats()));
                if *cluster {
                    let clustering = run.cluster();
                    let stats = clustering.stats();
                    out.push_str(&format!(
                        "clusters: {} total, {} multi-setting, mean multi size {:.2}\n",
                        stats.clusters,
                        stats.multi_clusters,
                        stats.mean_multi_cluster_size(),
                    ));
                }
                if let Some(path) = output {
                    let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
                    run.store
                        .save(BufWriter::new(file))
                        .map_err(|e| e.to_string())?;
                    out.push_str(&format!("wrote {path}\n"));
                }
                if let Some(path) = metrics_json {
                    write_metrics(path, &registry)?;
                    out.push_str(&format!("wrote metrics {path}\n"));
                }
                Ok(out)
            }
            Command::Stream {
                config,
                window_secs,
                threshold,
                poll_ms,
                verify,
                metrics_json,
            } => {
                let machines = fleet_machines(config)?;
                let params = ClusterParams {
                    window_ms: window_secs * 1000,
                    correlation_threshold: *threshold,
                    ..ClusterParams::default()
                };
                let engine = Ocasta::new(params);
                let registry = Registry::new();
                let fleet_metrics = metrics_json
                    .as_ref()
                    .map(|_| FleetMetrics::register(&registry));
                let mut stream = OcastaStream::new(&engine);
                if metrics_json.is_some() {
                    stream.set_metrics(Arc::new(StreamMetrics::register(&registry)));
                }
                let lanes = WriteLanes::new(config.engine.shards);
                let mut out = String::new();

                // Ingest on a background thread; serve live clusterings
                // from this one by draining the analytics lanes.
                let (store, report) = std::thread::scope(|scope| {
                    let handle = scope.spawn(|| {
                        let options = IngestOptions {
                            tap: Some(&lanes),
                            metrics: fleet_metrics.as_ref(),
                            ..IngestOptions::default()
                        };
                        fleet_ingest_observed(&machines, &config.engine, options)
                            .expect("no wal lane, no wal errors")
                    });
                    loop {
                        let finished = handle.is_finished();
                        if stream.drain_lanes(&lanes) > 0 {
                            let live = stream.clustering();
                            let stats = live.clustering.stats();
                            out.push_str(&format!(
                                "epoch {:>3}: {:>8} events  {:>5} clusters ({} multi)  \
                                 horizon max {}ms\n",
                                live.horizon.epoch,
                                live.horizon.events,
                                stats.clusters,
                                stats.multi_clusters,
                                live.horizon.max_time_ms.unwrap_or(0),
                            ));
                        }
                        if finished {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(*poll_ms));
                    }
                    handle.join().expect("ingest thread panicked")
                });

                stream.seal();
                let live = stream.clustering();
                let stats = live.clustering.stats();
                out.push_str(&format!("{report}\n"));
                out.push_str(&format!(
                    "final: epoch {}, {} events sealed @ watermark {}ms\n\
                     clusters: {} total, {} multi-setting, mean multi size {:.2}\n",
                    live.horizon.epoch,
                    live.horizon.events,
                    live.horizon.watermark_ms,
                    stats.clusters,
                    stats.multi_clusters,
                    stats.mean_multi_cluster_size(),
                ));
                if *verify {
                    let batch = engine.cluster_store(&store);
                    if live.clustering == batch {
                        out.push_str("streaming == batch: ok\n");
                    } else {
                        return Err(format!(
                            "streaming/batch mismatch: {} streamed vs {} batch clusters",
                            live.clustering.len(),
                            batch.len(),
                        ));
                    }
                }
                if let Some(path) = metrics_json {
                    write_metrics(path, &registry)?;
                    out.push_str(&format!("wrote metrics {path}\n"));
                }
                Ok(out)
            }
            Command::Repair {
                config,
                metrics_json,
            } => {
                let registry = Registry::new();
                let observers = match metrics_json {
                    Some(_) => ServiceObservers {
                        fleet: Some(Arc::new(FleetMetrics::register(&registry))),
                        service: Some(Arc::new(ServiceMetrics::register(&registry))),
                        stream: Some(Arc::new(StreamMetrics::register(&registry))),
                    },
                    None => ServiceObservers::default(),
                };
                let run = run_repair_service_observed(config, &observers)?;
                let mut out = format!(
                    "catalog: pinned at epoch {} ({} events, watermark {}ms) — \
                     {} clusters ({} multi), mid-ingest: {}\n\
                     snapshot: {}\n",
                    run.horizon.epoch,
                    run.horizon.events,
                    run.horizon.watermark_ms,
                    run.catalog_clusters,
                    run.catalog_multi,
                    if run.pinned_mid_ingest { "yes" } else { "no" },
                    run.snapshot_stats,
                );
                for session in &run.sessions {
                    let outcome = &session.report.outcome;
                    out.push_str(&format!(
                        "{}  error #{:<2} fixed: {}  trials {}/{}  screens {}  \
                         cluster {}  search {:.1?} ({} threads)  \"{}\"\n",
                        session.report.user,
                        session.scenario_id,
                        if session.report.is_fixed() {
                            "yes"
                        } else {
                            "NO "
                        },
                        outcome
                            .trials_to_fix
                            .map_or_else(|| "-".into(), |n| n.to_string()),
                        outcome.total_trials,
                        outcome.screenshots_to_fix,
                        session
                            .fixed_cluster_size
                            .map_or_else(|| "-".into(), |n| n.to_string()),
                        session.report.wall,
                        session.report.threads,
                        session.description,
                    ));
                }
                // The ingest line already carries the retention tally
                // (sweeps, clamps, horizon, reclaimed) when a policy ran.
                out.push_str(&format!("ingest: {}\n", run.ingest));
                out.push_str(&format!(
                    "session pin: {} (oldest history any session could touch)\n",
                    run.session_pin,
                ));
                out.push_str(&format!(
                    "fixed {}/{} sessions\n",
                    run.fixed_sessions(),
                    run.sessions.len(),
                ));
                if let Some(path) = metrics_json {
                    write_metrics(path, &registry)?;
                    out.push_str(&format!("wrote metrics {path}\n"));
                }
                Ok(out)
            }
            Command::Vopr {
                scenario,
                seed,
                list,
            } => {
                if *list {
                    let mut out = String::new();
                    for name in vopr_scenario_names() {
                        out.push_str(name);
                        out.push('\n');
                    }
                    return Ok(out);
                }
                let name = scenario.as_deref().expect("parse enforced --scenario");
                let outcome = run_vopr(name, *seed)?;
                let report = outcome.report();
                if outcome.passed() {
                    Ok(report)
                } else {
                    // A failed invariant is the error: main's error path
                    // prints the verdict and exits non-zero, so CI and
                    // `failing_seeds/` replays can gate on exit status.
                    Err(report)
                }
            }
            Command::Doctor { dir } => {
                let report = diagnose(dir);
                if report.has_errors() {
                    // Corruption: the report *is* the error, and main's
                    // error path turns it into a non-zero exit.
                    return Err(format!("{report}"));
                }
                Ok(format!("{report}\n"))
            }
            Command::Lint { root, json } => {
                let root = match root {
                    Some(dir) => std::path::PathBuf::from(dir),
                    None => find_lint_root()?,
                };
                let report = ocasta_lint::lint_workspace(&root)?;
                let rendered = if *json {
                    report.render_json()
                } else {
                    report.render_table()
                };
                if report.has_errors() {
                    // Findings are the error: main's error path prints
                    // the report and exits non-zero, like `doctor`.
                    return Err(rendered);
                }
                Ok(rendered)
            }
            Command::History { store, key } => {
                let store = load_store(store)?;
                let record = store
                    .record(key)
                    .ok_or_else(|| format!("key `{key}` not in store"))?;
                let mut out = format!(
                    "{key}: {} reads, {} writes, {} deletes\n",
                    record.reads, record.writes, record.deletes
                );
                for version in record.history() {
                    match &version.value {
                        Some(value) => {
                            out.push_str(&format!("  {}  = {}\n", version.timestamp, value))
                        }
                        None => out.push_str(&format!("  {}  (deleted)\n", version.timestamp)),
                    }
                }
                Ok(out)
            }
        }
    }
}

fn value_of<'a>(rest: &[&'a str], i: &mut usize) -> Result<&'a str, String> {
    let flag = rest[*i];
    *i += 1;
    rest.get(*i)
        .copied()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num(text: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

/// The widest day span any subcommand accepts (100 simulated years). Far
/// below the `Timestamp` saturation point, so every accepted value
/// converts exactly; anything larger is a typo, not a deployment.
const MAX_DAYS: u64 = 36_500;

/// Parses a day-count argument, rejecting 0 and absurd values (which
/// would otherwise saturate timestamp arithmetic).
fn parse_days(flag: &str, text: &str) -> Result<u64, String> {
    let days = parse_num(text)?;
    if days == 0 || days > MAX_DAYS {
        return Err(format!(
            "{flag} must be between 1 and {MAX_DAYS} days, got {days}"
        ));
    }
    Ok(days)
}

/// Finds the workspace root for `ocasta lint`: the nearest ancestor of
/// the current directory holding a `lint.toml`.
fn find_lint_root() -> Result<std::path::PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found in {} or any parent — run from the \
                     workspace or pass --root <dir>",
                    start.display()
                ));
            }
        }
    }
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Trace::load(BufReader::new(file)).map_err(|e| e.to_string())
}

fn load_store(path: &str) -> Result<Ttkv, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    Ttkv::load(BufReader::new(file)).map_err(|e| e.to_string())
}

/// Writes the registry snapshot to `path` as JSON.
fn write_metrics(path: &str, registry: &Registry) -> Result<(), String> {
    std::fs::write(path, registry.snapshot_json()).map_err(|e| format!("write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_generate() {
        let cmd = parse(&[
            "generate", "--app", "chrome", "--app", "gedit", "--days", "30", "--seed", "7", "-o",
            "t.txt",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                apps: vec!["chrome".into(), "gedit".into()],
                days: 30,
                seed: 7,
                output: "t.txt".into(),
            }
        );
        assert!(
            parse(&["generate", "--days", "3", "-o", "x"]).is_err(),
            "needs --app"
        );
        assert!(
            parse(&["generate", "--app", "chrome", "-o", "x"]).is_err(),
            "needs --days"
        );
    }

    #[test]
    fn parse_clusters_with_defaults_and_flags() {
        let cmd = parse(&["clusters", "s.ttkv"]).unwrap();
        assert_eq!(
            cmd,
            Command::Clusters {
                store: "s.ttkv".into(),
                window_secs: 1,
                threshold: 2.0,
                app: None,
                multi_only: false,
            }
        );
        let cmd = parse(&[
            "clusters",
            "s.ttkv",
            "--window",
            "30",
            "--threshold",
            "1.0",
            "--app",
            "word",
            "--multi-only",
        ])
        .unwrap();
        match cmd {
            Command::Clusters {
                window_secs,
                threshold,
                app,
                multi_only,
                ..
            } => {
                assert_eq!(window_secs, 30);
                assert_eq!(threshold, 1.0);
                assert_eq!(app.as_deref(), Some("word"));
                assert!(multi_only);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&["clusters", "s", "--threshold", "3.0"]).is_err(),
            "threshold range"
        );
    }

    #[test]
    fn parse_fleet() {
        let cmd = parse(&[
            "fleet",
            "--machines",
            "8",
            "--days",
            "14",
            "--seed",
            "5",
            "--threads",
            "4",
            "--shards",
            "32",
            "--app",
            "word",
            "--placement",
            "per-machine",
            "--cluster",
        ])
        .unwrap();
        match cmd {
            Command::Fleet {
                config,
                cluster,
                output,
                metrics_json,
            } => {
                assert!(metrics_json.is_none());
                assert_eq!(config.machines, 8);
                assert_eq!(config.days, 14);
                assert_eq!(config.seed, 5);
                assert_eq!(config.engine.ingest_threads, 4);
                assert_eq!(config.engine.shards, 32);
                assert_eq!(config.apps, vec!["word".to_owned()]);
                assert!(cluster);
                assert!(output.is_none());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["fleet", "--machines", "0", "--days", "3"]).is_err());
        assert!(parse(&[
            "fleet",
            "--machines",
            "2",
            "--days",
            "3",
            "--placement",
            "x"
        ])
        .is_err());
    }

    #[test]
    fn parse_stream() {
        let cmd = parse(&[
            "stream",
            "--machines",
            "3",
            "--days",
            "5",
            "--window",
            "30",
            "--threshold",
            "1.5",
            "--poll-ms",
            "5",
            "--verify",
        ])
        .unwrap();
        match cmd {
            Command::Stream {
                config,
                window_secs,
                threshold,
                poll_ms,
                verify,
                ..
            } => {
                assert_eq!(config.machines, 3);
                assert_eq!(config.days, 5);
                assert_eq!(window_secs, 30);
                assert_eq!(threshold, 1.5);
                assert_eq!(poll_ms, 5);
                assert!(verify);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["stream", "--machines", "0", "--days", "3"]).is_err());
        assert!(parse(&[
            "stream",
            "--machines",
            "2",
            "--days",
            "3",
            "--threshold",
            "9"
        ])
        .is_err());
    }

    #[test]
    fn parse_repair() {
        let cmd = parse(&[
            "repair",
            "--machines",
            "4",
            "--days",
            "8",
            "--users",
            "3",
            "--search-threads",
            "2",
            "--scenario",
            "13",
            "--scenario",
            "15",
            "--min-events",
            "500",
            "--start-bound-days",
            "5",
            "--strategy",
            "bfs",
        ])
        .unwrap();
        match cmd {
            Command::Repair { config, .. } => {
                assert_eq!(config.fleet.machines, 4);
                assert_eq!(config.fleet.days, 8);
                assert_eq!(config.users, 3);
                assert_eq!(config.search_threads, 2);
                assert_eq!(config.scenario_ids, vec![13, 15]);
                assert_eq!(config.min_catalog_events, 500);
                assert_eq!(config.start_bound_days, Some(5));
                assert_eq!(config.strategy, SearchStrategy::Bfs);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: scenario set falls back to the service default.
        match parse(&["repair", "--machines", "2", "--days", "3"]).unwrap() {
            Command::Repair { config, .. } => {
                assert!(!config.scenario_ids.is_empty());
                assert_eq!(config.strategy, SearchStrategy::Dfs);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["repair", "--machines", "0", "--days", "3"]).is_err());
        assert!(parse(&["repair", "--machines", "2"]).is_err(), "needs days");
        assert!(parse(&["repair", "--machines", "2", "--days", "3", "--users", "0"]).is_err());
        assert!(parse(&[
            "repair",
            "--machines",
            "2",
            "--days",
            "3",
            "--strategy",
            "zigzag"
        ])
        .is_err());
    }

    #[test]
    fn repair_end_to_end_fixes_against_a_live_fleet() {
        let out = parse(&[
            "repair",
            "--machines",
            "3",
            "--days",
            "6",
            "--users",
            "2",
            "--search-threads",
            "2",
            "--scenario",
            "13",
            "--scenario",
            "15",
            "--min-events",
            "300",
            "--threads",
            "2",
            "--shards",
            "4",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert!(out.contains("catalog: pinned at epoch"), "{out}");
        assert!(out.contains("fixed 2/2 sessions"), "{out}");
        assert!(out.contains("error #13"), "{out}");
        assert!(out.contains("error #15"), "{out}");
    }

    #[test]
    fn stream_end_to_end_serves_live_and_verified_clusters() {
        let out = parse(&[
            "stream",
            "--machines",
            "3",
            "--days",
            "4",
            "--app",
            "gedit",
            "--threads",
            "2",
            "--shards",
            "4",
            "--poll-ms",
            "2",
            "--verify",
        ])
        .unwrap()
        .run()
        .unwrap();
        assert!(out.contains("final: epoch"), "{out}");
        assert!(out.contains("clusters:"), "{out}");
        assert!(out.contains("streaming == batch: ok"), "{out}");
    }

    #[test]
    fn fleet_end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join(format!("ocasta-cli-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("fleet.ttkv").to_string_lossy().into_owned();
        let out = parse(&[
            "fleet",
            "--machines",
            "3",
            "--days",
            "4",
            "--app",
            "gedit",
            "--threads",
            "2",
            "--shards",
            "4",
            "--cluster",
            "-o",
            &store_path,
        ])
        .unwrap()
        .run()
        .unwrap();
        assert!(out.contains("3 machines"), "{out}");
        assert!(out.contains("clusters:"), "{out}");
        let reloaded = load_store(&store_path).unwrap();
        assert!(reloaded.stats().writes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_retain_days() {
        match parse(&[
            "fleet",
            "--machines",
            "2",
            "--days",
            "10",
            "--retain-days",
            "3",
        ])
        .unwrap()
        {
            Command::Fleet { config, .. } => {
                let policy = config.engine.retention.expect("retention set");
                assert_eq!(policy, RetentionPolicy::keep_days(3));
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "stream",
            "--machines",
            "2",
            "--days",
            "10",
            "--retain-days",
            "4",
        ])
        .unwrap()
        {
            Command::Stream { config, .. } => {
                assert_eq!(config.engine.retention, Some(RetentionPolicy::keep_days(4)));
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "repair",
            "--machines",
            "2",
            "--days",
            "10",
            "--retain-days",
            "5",
        ])
        .unwrap()
        {
            Command::Repair { config, .. } => {
                assert_eq!(
                    config.fleet.engine.retention,
                    Some(RetentionPolicy::keep_days(5)),
                );
            }
            other => panic!("{other:?}"),
        }
        // No flag: retention stays off.
        match parse(&["fleet", "--machines", "2", "--days", "10"]).unwrap() {
            Command::Fleet { config, .. } => assert!(config.engine.retention.is_none()),
            other => panic!("{other:?}"),
        }
        // --verify compares against the full history; retention forgets it.
        let err = parse(&[
            "stream",
            "--machines",
            "2",
            "--days",
            "10",
            "--retain-days",
            "3",
            "--verify",
        ])
        .unwrap_err();
        assert!(err.contains("full recorded history"), "{err}");
    }

    #[test]
    fn absurd_day_counts_are_rejected_with_a_proper_error() {
        // Regression: huge --days used to flow into unchecked timestamp
        // multiplication (debug panic / release wrap) instead of erroring.
        for args in [
            vec![
                "generate",
                "--app",
                "gedit",
                "--days",
                "99999999999",
                "-o",
                "x",
            ],
            vec!["fleet", "--machines", "2", "--days", "99999999999"],
            vec![
                "fleet",
                "--machines",
                "2",
                "--days",
                "5",
                "--retain-days",
                "0",
            ],
            vec!["stream", "--machines", "2", "--days", "0"],
            vec![
                "repair",
                "--machines",
                "2",
                "--days",
                "5",
                "--start-bound-days",
                "99999999999",
            ],
        ] {
            let err = parse(&args).unwrap_err();
            assert!(err.contains("must be between 1 and"), "{args:?} -> {err}");
        }
    }

    #[test]
    fn parse_rejects_unknown_verbs_and_args() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["stats"]).is_err());
        assert!(parse(&["stats", "a", "b"]).is_err());
        assert!(parse(&["history", "s"]).is_err());
        assert!(parse(&["export"]).is_err(), "export needs a store");
        assert!(parse(&["export", "s"]).is_err(), "export needs -o");
        assert!(parse(&["export", "s", "t", "-o", "u"]).is_err());
        assert_eq!(
            parse(&["export", "s.ttkv", "-o", "s.txt"]).unwrap(),
            Command::Export {
                store: "s.ttkv".into(),
                output: "s.txt".into(),
            }
        );
        assert!(parse(&["generate", "--app"]).is_err(), "flag without value");
        assert!(parse(&["doctor"]).is_err(), "doctor needs a directory");
        assert!(parse(&["doctor", "a", "b"]).is_err());
        assert!(
            parse(&["fleet", "--machines", "2", "--days", "3", "--metrics-json"]).is_err(),
            "flag without value"
        );
    }

    #[test]
    fn parse_metrics_json_and_doctor() {
        for verb in ["fleet", "stream", "repair"] {
            let cmd = parse(&[
                verb,
                "--machines",
                "2",
                "--days",
                "3",
                "--metrics-json",
                "m.json",
            ])
            .unwrap();
            let path = match cmd {
                Command::Fleet { metrics_json, .. }
                | Command::Stream { metrics_json, .. }
                | Command::Repair { metrics_json, .. } => metrics_json,
                other => panic!("{other:?}"),
            };
            assert_eq!(path.as_deref(), Some("m.json"), "{verb}");
        }
        assert_eq!(
            parse(&["doctor", "waldir"]).unwrap(),
            Command::Doctor {
                dir: "waldir".into()
            }
        );
    }

    #[test]
    fn parse_vopr() {
        assert_eq!(
            parse(&["vopr", "--scenario", "baseline", "--seed", "42"]).unwrap(),
            Command::Vopr {
                scenario: Some("baseline".into()),
                seed: 42,
                list: false,
            }
        );
        assert_eq!(
            parse(&["vopr", "--scenario", "clock-skew"]).unwrap(),
            Command::Vopr {
                scenario: Some("clock-skew".into()),
                seed: 0,
                list: false,
            },
            "seed defaults to 0"
        );
        assert_eq!(
            parse(&["vopr", "--list"]).unwrap(),
            Command::Vopr {
                scenario: None,
                seed: 0,
                list: true,
            }
        );
        assert!(parse(&["vopr"]).is_err(), "needs --scenario or --list");
        assert!(parse(&["vopr", "--seed", "7"]).is_err());
        assert!(parse(&["vopr", "--scenario"]).is_err(), "flag needs value");
        assert!(parse(&["vopr", "--scenario", "baseline", "bogus"]).is_err());
    }

    #[test]
    fn parse_lint() {
        assert_eq!(
            parse(&["lint", "--root", "somewhere", "--json"]).unwrap(),
            Command::Lint {
                root: Some("somewhere".into()),
                json: true,
            }
        );
        assert_eq!(
            parse(&["lint"]).unwrap(),
            Command::Lint {
                root: None,
                json: false,
            }
        );
        assert!(parse(&["lint", "--root"]).is_err(), "flag needs value");
        assert!(parse(&["lint", "bogus"]).is_err());
    }

    /// The CLI self-run: `ocasta lint` over this very workspace must be
    /// clean — the same gate CI applies via `ocasta-lint --workspace`.
    #[test]
    fn lint_subcommand_is_clean_on_this_workspace() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let root = root.to_string_lossy().into_owned();
        let out = parse(&["lint", "--root", &root]).unwrap().run().unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn vopr_list_names_every_scenario() {
        let out = parse(&["vopr", "--list"]).unwrap().run().unwrap();
        let names: Vec<&str> = out.lines().collect();
        assert_eq!(names, ocasta::vopr_scenario_names().to_vec());
    }

    #[test]
    fn vopr_rejects_unknown_scenarios_via_run() {
        let err = parse(&["vopr", "--scenario", "nope"]).unwrap().run();
        assert!(err.unwrap_err().contains("unknown scenario"));
    }

    /// Seed-determinism with observation attached: the same fleet run,
    /// once with metrics collection and once without, must write a
    /// byte-identical `-o` store. Metrics are pure observers — if this
    /// test fails, something read a metric back into a decision.
    #[test]
    fn metrics_collection_never_perturbs_the_output_bytes() {
        let dir = std::env::temp_dir().join(format!("ocasta-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("plain.ttkv").to_string_lossy().into_owned();
        let observed = dir.join("observed.ttkv").to_string_lossy().into_owned();
        let metrics = dir.join("metrics.json").to_string_lossy().into_owned();
        let base = [
            "fleet",
            "--machines",
            "3",
            "--days",
            "5",
            "--seed",
            "42",
            "--app",
            "gedit",
            "--threads",
            "2",
            "--shards",
            "4",
            "--retain-days",
            "2",
        ];

        let mut args: Vec<&str> = base.to_vec();
        args.extend(["-o", &plain]);
        parse(&args).unwrap().run().unwrap();

        let mut args: Vec<&str> = base.to_vec();
        args.extend(["-o", &observed, "--metrics-json", &metrics]);
        let out = parse(&args).unwrap().run().unwrap();
        assert!(out.contains("wrote metrics"), "{out}");

        let plain_bytes = std::fs::read(&plain).unwrap();
        let observed_bytes = std::fs::read(&observed).unwrap();
        assert!(!plain_bytes.is_empty());
        assert_eq!(
            plain_bytes, observed_bytes,
            "metrics must not perturb the run"
        );

        // And the snapshot actually observed the run.
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"fleet.ingest.batches\""), "{json}");
        assert!(json.contains("\"fleet.sweep.count\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doctor_end_to_end_healthy_and_corrupt() {
        let dir = std::env::temp_dir().join(format!("ocasta-cli-doctor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = dir.join("wal");
        std::fs::create_dir_all(&wal).unwrap();
        let wal_str = wal.to_string_lossy().into_owned();

        // A real fleet run populates the WAL directory.
        parse(&[
            "fleet",
            "--machines",
            "2",
            "--days",
            "3",
            "--app",
            "gedit",
            "--wal",
            &wal_str,
        ])
        .unwrap()
        .run()
        .unwrap();

        let out = parse(&["doctor", &wal_str]).unwrap().run().unwrap();
        assert!(out.contains("healthy"), "{out}");

        // Flip a byte inside the log's first frame: corruption, non-Ok.
        let log = wal.join("wal.log");
        let mut bytes = std::fs::read(&log).unwrap();
        let offset = ocasta::WAL_MAGIC.len() + 8 + 2;
        bytes[offset] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();
        let err = parse(&["doctor", &wal_str]).unwrap().run().unwrap_err();
        assert!(err.contains("log-corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join(format!("ocasta-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.txt").to_string_lossy().into_owned();
        let store_path = dir.join("s.ttkv").to_string_lossy().into_owned();

        let out = parse(&[
            "generate",
            "--app",
            "gedit",
            "--days",
            "20",
            "--seed",
            "3",
            "-o",
            &trace_path,
        ])
        .unwrap()
        .run()
        .unwrap();
        assert!(out.contains("20 days"));

        let out = parse(&["stats", &trace_path]).unwrap().run().unwrap();
        assert!(out.contains("keys"));

        let out = parse(&["replay", &trace_path, "-o", &store_path])
            .unwrap()
            .run()
            .unwrap();
        assert!(out.contains("wrote"));

        // `replay -o` writes binary v2; `export` turns it back into text v1,
        // and both load to the same store through magic sniffing.
        let store_bytes = std::fs::read(&store_path).unwrap();
        assert!(store_bytes.starts_with(ocasta_ttkv::BINARY_MAGIC));
        let text_path = dir.join("store.txt").to_string_lossy().into_owned();
        let out = parse(&["export", &store_path, "-o", &text_path])
            .unwrap()
            .run()
            .unwrap();
        assert!(out.contains("exported"), "{out}");
        let text = std::fs::read_to_string(&text_path).unwrap();
        assert!(text.starts_with("ocasta-ttkv v1"), "text v1 export");
        assert_eq!(
            Ttkv::load(store_bytes.as_slice()).unwrap(),
            Ttkv::load_from_str(&text).unwrap(),
        );

        let out = parse(&["clusters", &store_path, "--multi-only"])
            .unwrap()
            .run()
            .unwrap();
        assert!(out.contains("# "), "summary line present: {out}");

        let out = parse(&["history", &store_path, "gedit/view/wrap_mode"])
            .unwrap()
            .run()
            .unwrap();
        assert!(out.contains("writes"));

        let err = parse(&["history", &store_path, "no/such/key"])
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.contains("not in store"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
