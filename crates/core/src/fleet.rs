//! Fleet-scale ingestion, wired to the evaluated application catalog.
//!
//! `ocasta-fleet` itself is application-agnostic: it ingests whatever
//! [`MachineSpec`]s it is given. This module builds those specs from the
//! paper's application models (`ocasta-apps`), runs a concurrent ingestion,
//! and optionally hands the merged store straight to clustering — the full
//! paper pipeline at deployment scale, in one call.

use ocasta_fleet::{
    ingest_observed, FleetConfig, FleetMetrics, FleetReport, IngestOptions, KeyPlacement,
    MachineSpec, Wal,
};
use ocasta_ttkv::{TimePrecision, Ttkv};

use crate::pipeline::{Clustering, Ocasta};

/// Configuration of one fleet run over the application catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunConfig {
    /// Number of simulated machines (the paper deployed 29).
    pub machines: usize,
    /// Deployment length in days per machine.
    pub days: u64,
    /// Base RNG seed; machine `i` uses `seed + i`.
    pub seed: u64,
    /// Applications installed on every machine (names resolved through
    /// [`crate::model_by_name`]); empty means the full catalog.
    pub apps: Vec<String>,
    /// Engine knobs (shards, threads, batching, placement, precision).
    pub engine: FleetConfig,
    /// Directory for a write-ahead log, if durability is wanted.
    pub wal_dir: Option<std::path::PathBuf>,
}

impl Default for FleetRunConfig {
    fn default() -> Self {
        FleetRunConfig {
            machines: 29,
            days: 30,
            seed: 0,
            apps: Vec::new(),
            engine: FleetConfig::default(),
            wal_dir: None,
        }
    }
}

/// The outcome of a fleet run.
#[derive(Debug)]
pub struct FleetRun {
    /// The merged, consistent store.
    pub store: Ttkv,
    /// Ingestion throughput report.
    pub report: FleetReport,
}

impl FleetRun {
    /// Clusters the merged store with the default engine parameters.
    pub fn cluster(&self) -> Clustering {
        Ocasta::default().cluster_store(&self.store)
    }
}

/// Builds the fleet's machine specs from the application catalog.
///
/// # Errors
///
/// Returns an error naming the first unknown application.
pub fn fleet_machines(config: &FleetRunConfig) -> Result<Vec<MachineSpec>, String> {
    let specs: Vec<_> = if config.apps.is_empty() {
        crate::all_models().into_iter().map(|m| m.spec).collect()
    } else {
        let mut specs = Vec::with_capacity(config.apps.len());
        for name in &config.apps {
            let model = crate::model_by_name(name)
                .ok_or_else(|| format!("unknown application `{name}`"))?;
            specs.push(model.spec);
        }
        specs
    };
    Ok((0..config.machines)
        .map(|i| {
            MachineSpec::new(
                format!("m{i:03}"),
                config.days,
                config.seed + i as u64,
                specs.clone(),
            )
        })
        .collect())
}

/// Runs a concurrent fleet ingestion per `config`.
///
/// # Errors
///
/// Unknown application names, or WAL failures when `wal_dir` is set.
pub fn run_fleet(config: &FleetRunConfig) -> Result<FleetRun, String> {
    run_fleet_observed(config, None)
}

/// [`run_fleet`] with an optional metrics bundle attached to the engine.
///
/// The bundle records throughput, stripe-lock waits, WAL timings and sweep
/// stalls into lock-free [`ocasta_obs`](ocasta_fleet::FleetMetrics)
/// primitives; it is purely observational — the run's output is
/// byte-identical with and without it.
///
/// # Errors
///
/// Same conditions as [`run_fleet`].
pub fn run_fleet_observed(
    config: &FleetRunConfig,
    metrics: Option<&FleetMetrics>,
) -> Result<FleetRun, String> {
    let machines = fleet_machines(config)?;
    let mut wal = match &config.wal_dir {
        Some(dir) => Some(Wal::open(dir).map_err(|e| e.to_string())?),
        None => None,
    };
    let options = IngestOptions {
        wal: wal.as_mut(),
        metrics,
        ..IngestOptions::default()
    };
    let (store, report) =
        ingest_observed(&machines, &config.engine, options).map_err(|e| e.to_string())?;
    Ok(FleetRun { store, report })
}

/// Convenience re-exports so callers need only the facade crate.
pub use ocasta_fleet::{
    FleetConfig as FleetEngineConfig, KeyPlacement as FleetKeyPlacement,
    MachineSpec as FleetMachineSpec,
};

/// The default quantisation the CLI uses (matches the deployed loggers).
pub const FLEET_DEFAULT_PRECISION: TimePrecision = TimePrecision::Seconds;

/// `KeyPlacement` parsed from a CLI word.
pub fn parse_placement(text: &str) -> Result<KeyPlacement, String> {
    match text {
        "merged" => Ok(KeyPlacement::Merged),
        "per-machine" => Ok(KeyPlacement::PerMachine),
        other => Err(format!(
            "placement must be `merged` or `per-machine`, got `{other}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetRunConfig {
        FleetRunConfig {
            machines: 4,
            days: 6,
            seed: 3,
            apps: vec!["gedit".into(), "evolution".into()],
            engine: FleetConfig {
                shards: 4,
                ingest_threads: 2,
                batch_size: 64,
                ..FleetConfig::default()
            },
            wal_dir: None,
        }
    }

    #[test]
    fn run_fleet_ingests_and_clusters() {
        let run = run_fleet(&small_config()).unwrap();
        assert_eq!(run.report.machines, 4);
        assert!(run.report.mutations > 0);
        assert_eq!(
            run.store.stats().writes + run.store.stats().deletes,
            run.report.mutations
        );
        let clustering = run.cluster();
        assert!(!clustering.is_empty());
    }

    #[test]
    fn unknown_apps_are_rejected() {
        let mut config = small_config();
        config.apps = vec!["clippy2000".into()];
        assert!(run_fleet(&config).unwrap_err().contains("clippy2000"));
    }

    #[test]
    fn empty_app_list_means_whole_catalog() {
        let config = FleetRunConfig {
            machines: 1,
            days: 2,
            apps: Vec::new(),
            ..small_config()
        };
        let machines = fleet_machines(&config).unwrap();
        assert_eq!(machines[0].specs.len(), crate::all_models().len());
    }

    #[test]
    fn placement_parsing() {
        assert_eq!(parse_placement("merged").unwrap(), KeyPlacement::Merged);
        assert_eq!(
            parse_placement("per-machine").unwrap(),
            KeyPlacement::PerMachine
        );
        assert!(parse_placement("sideways").is_err());
    }
}
