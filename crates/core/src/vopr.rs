//! `ocasta vopr` — the deterministic fault-scenario matrix.
//!
//! A VOPR run drives the whole fleet — concurrent ingestion, the WAL
//! lane, the streaming clustering, the retention sweeper and the repair
//! search — through one named adversarial scenario, then checks **all
//! four standing invariants** of the system against what actually
//! happened:
//!
//! 1. **replay-matches-store** — replaying the WAL reproduces the live
//!    store (exactly, or as a strict prefix when the scenario killed the
//!    appender lane);
//! 2. **stream-equals-batch** — the streaming clustering equals the batch
//!    clustering over the same mutations (`DESIGN.md §5.7`);
//! 3. **retention-equivalence** — the retained store equals the unbounded
//!    reference pruned once at the final horizon (and shell-GC'd when the
//!    run GC'd), exact [`Ttkv`] equality (`DESIGN.md §5.9`);
//! 4. **parallel-equals-sequential** — the parallel rollback search
//!    reports the sequential search's outcome field for field
//!    (`DESIGN.md §5.8`).
//!
//! Scenarios fall in two classes. *Feed-driven* scenarios perturb a
//! deterministic single-threaded delivery of the fleet's op stream
//! (stragglers, clock skew, duplicates, reordering, churn, pinned
//! sweeps); *engine* scenarios run the real concurrent engine with a
//! [`FaultPlan`] injected (a killed ingest worker, a silently dead WAL
//! appender, a sweeper stopped mid-flight) or crash the WAL's compaction
//! by hand and reopen. Each scenario may append extra scenario-specific
//! checks after the standing four.
//!
//! **The determinism rule:** same scenario + same seed ⇒ byte-identical
//! verdict report. Reports therefore carry only deterministic facts —
//! scenario, seed, fleet shape, op counts, per-check verdicts — never
//! timings, paths or thread counts observed at runtime. Shuffles come
//! from an in-module xorshift generator seeded from the run's seed.
//!
//! A reproducing seed is a permanent asset: when a scenario fails, its
//! `vopr --scenario <name> --seed <n>` line goes into `failing_seeds/`
//! *before* the fix, and the tier-1 suite replays every entry forever
//! (see `failing_seeds/README.md`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ocasta_fleet::{
    ingest_live, ingest_sequential, EpochSnapshot, FaultPlan, FleetConfig, IngestError,
    IngestOptions, KeyPlacement, MachineSpec, RetentionPolicy, ShardedTtkv, Wal, WriteLanes,
};
use ocasta_repair::{
    parallel_search, search, FixOracle, Screenshot, SearchConfig, SearchOutcome, SearchStrategy,
    Trial,
};
use ocasta_trace::{AccessEvent, TraceOp};
use ocasta_ttkv::{HorizonGuard, HorizonPin, TimeDelta, TimePrecision, Timestamp, Ttkv, Value};

use crate::fleet::{fleet_machines, FleetRunConfig};
use crate::pipeline::{Clustering, Ocasta};
use crate::stream::OcastaStream;

/// Timestamp quantisation every VOPR run ingests at (the fleet default).
const PRECISION: TimePrecision = TimePrecision::Seconds;

/// Ops per delivered feed chunk (the feed-driven unit of interleaving).
const CHUNK: usize = 64;

/// The scenario catalog, in canonical order.
const SCENARIOS: &[&str] = &[
    "baseline",
    "straggler-machine",
    "clock-skew",
    "duplicate-feed",
    "reorder-feed",
    "dead-shell-churn",
    "sweep-vs-pin",
    "pin-churn",
    "kill-ingest-worker",
    "wal-appender-crash",
    "crash-mid-sweep",
    "crash-mid-rebase",
    "killed-worker-amid-pin-churn",
];

/// Every scenario name `vopr` accepts, in canonical order.
pub fn vopr_scenario_names() -> &'static [&'static str] {
    SCENARIOS
}

/// One invariant check's verdict inside a VOPR run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoprCheck {
    /// Stable check name (appears in the verdict report).
    pub name: &'static str,
    /// `true` if the invariant held.
    pub passed: bool,
    /// Deterministic supporting detail (shown on failure).
    pub detail: String,
}

/// What one VOPR run did: scenario, seed, and every check's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoprOutcome {
    /// The scenario that ran.
    pub scenario: &'static str,
    /// The seed it ran with.
    pub seed: u64,
    /// Simulated machines in the fleet.
    pub machines: usize,
    /// Simulated days per machine.
    pub days: u64,
    /// Mutations the live store ended up holding.
    pub mutations: u64,
    /// Read accesses the live store ended up holding.
    pub reads: u64,
    /// Every check, standing invariants first, scenario extras after.
    pub checks: Vec<VoprCheck>,
}

impl VoprOutcome {
    /// `true` if every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The deterministic verdict report: same scenario + seed ⇒
    /// byte-identical text (no timings, paths or machine-local state).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vopr scenario={} seed={}", self.scenario, self.seed);
        let _ = writeln!(
            out,
            "fleet: {} machines x {} days",
            self.machines, self.days
        );
        let _ = writeln!(
            out,
            "ops: {} mutations, {} reads",
            self.mutations, self.reads
        );
        let failures = self.checks.iter().filter(|c| !c.passed).count();
        for check in &self.checks {
            if check.passed {
                let _ = writeln!(out, "check {}: PASS", check.name);
            } else {
                let _ = writeln!(out, "check {}: FAIL - {}", check.name, check.detail);
            }
        }
        let _ = writeln!(
            out,
            "verdict: {} ({} checks, {} failures)",
            if failures == 0 { "PASS" } else { "FAIL" },
            self.checks.len(),
            failures,
        );
        out
    }
}

/// How a WAL replay must relate to the live store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayRelation {
    /// Replay reproduces the store exactly (every healthy-lane scenario).
    Equal,
    /// Replay is a strict prefix: strictly fewer mutations, and no key
    /// counter exceeding the live store's (a silently dead appender lane
    /// loses batches but never invents or reorders them).
    StrictPrefix,
}

/// Standing invariant 1: replaying the WAL reproduces the live store.
pub fn check_replay_matches_store(
    replayed: &Ttkv,
    live: &Ttkv,
    relation: ReplayRelation,
) -> VoprCheck {
    let (r, l) = (replayed.stats(), live.stats());
    let passed = match relation {
        ReplayRelation::Equal => replayed == live,
        ReplayRelation::StrictPrefix => {
            let fewer = r.writes + r.deletes < l.writes + l.deletes;
            let subset = replayed.iter().all(|(key, rec)| {
                live.record(key.as_str()).is_some_and(|full| {
                    rec.writes <= full.writes
                        && rec.deletes <= full.deletes
                        && rec.reads <= full.reads
                })
            });
            fewer && subset
        }
    };
    VoprCheck {
        name: "replay-matches-store",
        passed,
        detail: format!(
            "replayed {} writes / {} deletes / {} keys vs live {} / {} / {} ({relation:?})",
            r.writes,
            r.deletes,
            replayed.len(),
            l.writes,
            l.deletes,
            live.len(),
        ),
    }
}

/// Standing invariant 2: the streaming clustering equals the batch
/// clustering computed over the same mutations.
pub fn check_stream_equals_batch(live: &Clustering, batch: &Clustering) -> VoprCheck {
    VoprCheck {
        name: "stream-equals-batch",
        passed: live == batch,
        detail: format!(
            "streamed {} clusters vs batch {} clusters",
            live.len(),
            batch.len(),
        ),
    }
}

/// Standing invariant 3: the retained store equals the unbounded
/// reference pruned **once** at the final horizon — shell-GC'd too when
/// the run GC'd — as exact [`Ttkv`] equality.
pub fn check_retention_equivalence(
    retained: &Ttkv,
    unbounded: &Ttkv,
    horizon: Timestamp,
    final_gc: bool,
) -> VoprCheck {
    let mut expected = unbounded.clone();
    if horizon > Timestamp::EPOCH {
        expected.prune_before(horizon);
    }
    let shells = if final_gc {
        expected.gc_dead_shells()
    } else {
        0
    };
    VoprCheck {
        name: "retention-equivalence",
        passed: *retained == expected,
        detail: format!(
            "retained {} keys / {} writes vs expected {} keys / {} writes \
             (horizon {}ms, {} shells gc'd)",
            retained.len(),
            retained.stats().writes,
            expected.len(),
            expected.stats().writes,
            horizon.as_millis(),
            shells,
        ),
    }
}

/// Standing invariant 4: the parallel rollback search's outcome equals
/// the sequential search's, field for field.
pub fn check_parallel_equals_sequential(
    sequential: &SearchOutcome,
    parallel: &SearchOutcome,
) -> VoprCheck {
    VoprCheck {
        name: "parallel-equals-sequential",
        passed: sequential == parallel,
        detail: format!(
            "sequential {} trials / {} screenshots / fixed={} vs parallel {} / {} / fixed={}",
            sequential.total_trials,
            sequential.total_screenshots,
            sequential.is_fixed(),
            parallel.total_trials,
            parallel.total_screenshots,
            parallel.is_fixed(),
        ),
    }
}

/// Pin-churn invariant: an epoch-pinned snapshot equals the legacy
/// clone-under-lock snapshot taken at the same quiescent moment, as exact
/// [`Ttkv`] equality (`DESIGN.md §5.13`).
pub fn check_epoch_equals_clone(epoch: &Ttkv, clone: &Ttkv) -> VoprCheck {
    VoprCheck {
        name: "epoch-matches-clone",
        passed: epoch == clone,
        detail: format!(
            "epoch pin {} keys / {} writes vs clone {} keys / {} writes",
            epoch.len(),
            epoch.stats().writes,
            clone.len(),
            clone.stats().writes,
        ),
    }
}

/// Pin-churn invariant: every short-lived session's pinned view survived
/// the sweeper unchanged. `checked` is how many sessions re-materialized
/// their pin and compared it against the materialization taken at pin
/// time; `diverged` is how many differed. The check demands at least one
/// session actually churned (a scenario that never pins proves nothing).
pub fn check_pin_churn_sessions(checked: u64, diverged: u64) -> VoprCheck {
    VoprCheck {
        name: "pins-survive-sweeps",
        passed: checked > 0 && diverged == 0,
        detail: format!("{checked} pinned sessions checked, {diverged} diverged"),
    }
}

/// Pin-churn invariant: pins taken in sequence observe a non-decreasing
/// mutation total — a later pin can never see *less* history than an
/// earlier one. The detail reports only the pin count and inversion
/// count, never the raw totals, so engine scenarios (where totals depend
/// on thread timing) keep byte-deterministic reports.
pub fn check_pin_monotonicity(mutation_totals: &[u64]) -> VoprCheck {
    let inversions = mutation_totals.windows(2).filter(|w| w[1] < w[0]).count();
    VoprCheck {
        name: "pins-monotone",
        passed: inversions == 0,
        detail: format!(
            "{} pins taken in sequence, {inversions} ordering inversions",
            mutation_totals.len(),
        ),
    }
}

/// Runs one scenario under one seed and reports every check's verdict.
///
/// Same scenario + same seed ⇒ the returned
/// [`VoprOutcome::report`] is byte-identical across runs and machines.
///
/// # Errors
///
/// Unknown scenario names, or environmental failures (scratch-directory
/// I/O) that prevent the scenario from running at all. Invariant
/// *violations* are not errors — they come back as failed checks.
pub fn run_vopr(scenario: &str, seed: u64) -> Result<VoprOutcome, String> {
    let scenario = SCENARIOS
        .iter()
        .copied()
        .find(|s| *s == scenario)
        .ok_or_else(|| {
            format!(
                "unknown scenario `{scenario}` (try: {})",
                SCENARIOS.join(", ")
            )
        })?;
    let dir = scratch_dir(scenario, seed);
    let _ = std::fs::remove_dir_all(&dir);
    let result = match scenario {
        "kill-ingest-worker"
        | "wal-appender-crash"
        | "crash-mid-sweep"
        | "killed-worker-amid-pin-churn" => run_engine_scenario(scenario, seed, &dir),
        _ => run_feed_scenario(scenario, seed, &dir),
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// A unique scratch WAL directory per run. The counter keeps concurrent
/// runs of the *same* scenario + seed (e.g. parallel test threads in one
/// process) from colliding; the path never appears in a verdict report.
fn scratch_dir(scenario: &str, seed: u64) -> PathBuf {
    static RUNS: AtomicU64 = AtomicU64::new(0);
    let run = RUNS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ocasta-vopr-{scenario}-{seed}-{}-{run}",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------
// Deterministic randomness (no `rand` dependency, no wall clock).
// ---------------------------------------------------------------------

/// Spreads a user seed into a non-zero xorshift state.
fn mix_seed(seed: u64) -> u64 {
    let state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    if state == 0 {
        1
    } else {
        state
    }
}

/// xorshift64: deterministic, dependency-free shuffle source.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// In-place Fisher–Yates driven by [`xorshift`].
fn shuffle<T>(items: &mut [T], state: &mut u64) {
    for i in (1..items.len()).rev() {
        let j = (xorshift(state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

// ---------------------------------------------------------------------
// Feed-driven scenarios.
// ---------------------------------------------------------------------

/// Quantises a trace op the way the ingest engine would.
fn quantize(op: TraceOp) -> TraceOp {
    match op {
        TraceOp::Mutation(mut event) => {
            event.timestamp = PRECISION.apply(event.timestamp);
            TraceOp::Mutation(event)
        }
        reads => reads,
    }
}

/// The mutation event a chunked op contributes to the analytics stream
/// (reads carry no co-modification signal), mirroring the fleet tap.
fn lane_event(op: &TraceOp) -> Option<(ocasta_ttkv::Key, Timestamp)> {
    match op {
        TraceOp::Mutation(event) => Some((event.key.clone(), event.timestamp)),
        TraceOp::Reads(..) => None,
    }
}

/// Builds the per-machine quantised op streams for a feed scenario,
/// including scenario-specific op edits (clock skew, churn injection).
fn feed_machine_ops(
    scenario: &str,
    seed: u64,
    machines: usize,
    days: u64,
) -> Result<Vec<Vec<TraceOp>>, String> {
    let config = FleetRunConfig {
        machines,
        days,
        seed,
        apps: vec!["gedit".into(), "evolution".into()],
        ..FleetRunConfig::default()
    };
    let specs = fleet_machines(&config)?;
    let mut per_machine: Vec<Vec<TraceOp>> = specs
        .iter()
        .map(|machine| machine.stream().map(quantize).collect())
        .collect();
    match scenario {
        "clock-skew" => {
            // Machine 1's clock runs six hours fast: every mutation it
            // reports lands ahead of the rest of the fleet.
            let skew = TimeDelta::from_secs(6 * 3600);
            for op in &mut per_machine[1] {
                if let TraceOp::Mutation(event) = op {
                    event.timestamp += skew;
                }
            }
        }
        "dead-shell-churn" => {
            // Machine 0 additionally churns short-lived keys: written,
            // read, deleted within the first day — all reclaimed by the
            // final horizon, leaving counter-only shells unless GC runs.
            for i in 0..48u64 {
                let born = Timestamp::from_secs(3_600 + i * 120);
                let key = format!("churn/k{i:02}");
                per_machine[0].push(TraceOp::Mutation(AccessEvent::write(
                    born,
                    key.clone(),
                    Value::from(i as i64),
                )));
                per_machine[0].push(TraceOp::Reads(key.clone().into(), 3));
                per_machine[0].push(TraceOp::Mutation(AccessEvent::delete(
                    born + TimeDelta::from_mins(30),
                    key,
                )));
            }
        }
        _ => {}
    }
    Ok(per_machine)
}

/// Chunks each machine's ops and interleaves the chunks round-robin —
/// the deterministic stand-in for concurrent machine delivery.
fn interleave(per_machine: Vec<Vec<TraceOp>>, order: &[usize]) -> Vec<Vec<TraceOp>> {
    let mut queues: Vec<std::collections::VecDeque<Vec<TraceOp>>> = per_machine
        .into_iter()
        .map(|ops| {
            let mut chunks = std::collections::VecDeque::new();
            let mut ops = ops.into_iter().peekable();
            while ops.peek().is_some() {
                chunks.push_back(ops.by_ref().take(CHUNK).collect());
            }
            chunks
        })
        .collect();
    let mut feed = Vec::new();
    let mut drained = false;
    while !drained {
        drained = true;
        for &machine in order {
            if let Some(chunk) = queues[machine].pop_front() {
                feed.push(chunk);
                drained = false;
            }
        }
    }
    feed
}

/// Builds the delivered chunk sequence for a feed scenario.
fn feed_chunks(
    scenario: &str,
    seed: u64,
    machines: usize,
    days: u64,
) -> Result<Vec<Vec<TraceOp>>, String> {
    let per_machine = feed_machine_ops(scenario, seed, machines, days)?;
    let mut chunks = match scenario {
        // Machine 0's whole stream arrives only after everyone else
        // finished — a straggler re-sending its backlog at the end.
        "straggler-machine" => {
            let mut rest: Vec<Vec<TraceOp>> = per_machine.clone();
            let straggler = rest.remove(0);
            let mut feed = interleave(rest, &[0, 1]);
            feed.extend(interleave(vec![straggler], &[0]));
            feed
        }
        _ => {
            let order: Vec<usize> = (0..per_machine.len()).collect();
            interleave(per_machine, &order)
        }
    };
    match scenario {
        "reorder-feed" => {
            let mut state = mix_seed(seed);
            shuffle(&mut chunks, &mut state);
        }
        "duplicate-feed" => {
            // Every ninth chunk is delivered twice (an at-least-once
            // transport retrying): all consumers see the duplicate.
            let mut duplicated = Vec::with_capacity(chunks.len() + chunks.len() / 9 + 1);
            for (i, chunk) in chunks.into_iter().enumerate() {
                let again = i % 9 == 4;
                duplicated.push(chunk.clone());
                if again {
                    duplicated.push(chunk);
                }
            }
            chunks = duplicated;
        }
        _ => {}
    }
    Ok(chunks)
}

/// Runs one feed-driven scenario: single-threaded deterministic delivery
/// of the chunk sequence into WAL + sharded store + streaming clustering,
/// with scenario-driven retention sweeps, then the four standing checks
/// plus the scenario's extras.
fn run_feed_scenario(
    scenario: &'static str,
    seed: u64,
    dir: &std::path::Path,
) -> Result<VoprOutcome, String> {
    let (machines, days) = (3usize, 4u64);
    let chunks = feed_chunks(scenario, seed, machines, days)?;
    let retain = matches!(scenario, "dead-shell-churn" | "sweep-vs-pin" | "pin-churn")
        .then(|| TimeDelta::from_days(1));

    let engine = Ocasta::default();
    let mut stream = OcastaStream::new(&engine);
    // pin-churn seals aggressively so the sessions' epoch pins reference
    // real sealed segments, not just tail clones.
    let sharded = if scenario == "pin-churn" {
        ShardedTtkv::with_seal_threshold(4, 128)
    } else {
        ShardedTtkv::new(4)
    };
    let mut reference = Ttkv::new();
    let guard = HorizonGuard::new();
    let mut wal = Wal::open(dir).map_err(|e| format!("open scratch wal: {e}"))?;

    // sweep-vs-pin bookkeeping: where the pin registered, how many sweeps
    // it clamped, and the first post-advance horizon.
    let mut pin: Option<HorizonPin<'_>> = None;
    let mut pin_at = Timestamp::EPOCH;
    let mut clamped_while_pinned = 0u64;
    let mut post_advance_horizon: Option<Timestamp> = None;

    // pin-churn bookkeeping: short-lived sessions, each holding a
    // retention pin (so sweeps clamp around it, composing with the
    // HorizonGuard registry) plus an epoch pin with its pin-time
    // materialization as the oracle. Sessions open every 5th chunk and
    // close ~7 chunks later; a few stay open across the final
    // sweep + shell-GC + rebase to prove a pinned generation outlives
    // even the rebase.
    let mut churn_sessions: Vec<(usize, HorizonPin<'_>, EpochSnapshot, Ttkv)> = Vec::new();
    let mut sessions_checked = 0u64;
    let mut sessions_diverged = 0u64;
    fn close_session(
        session: (usize, HorizonPin<'_>, EpochSnapshot, Ttkv),
        checked: &mut u64,
        diverged: &mut u64,
    ) {
        let (_, _retention_pin, epoch, oracle) = session;
        *checked += 1;
        if epoch.materialize() != oracle {
            *diverged += 1;
        }
        // `_retention_pin` drops here: the sweeper may pass this point now.
    }

    let total = chunks.len();
    for (i, chunk) in chunks.iter().enumerate() {
        wal.append(chunk).map_err(|e| format!("wal append: {e}"))?;
        for op in chunk {
            // Ops are pre-quantised; milliseconds = apply verbatim.
            op.clone()
                .apply(&mut reference, TimePrecision::Milliseconds);
        }
        stream.absorb_batch(chunk.iter().filter_map(lane_event));
        sharded.append_routed(chunk.clone());

        if scenario == "pin-churn" {
            if let Some(retain) = retain {
                // Open a short session every 5th chunk: retention pin at
                // frontier − retain, epoch pin, pin-time oracle.
                if i % 5 == 2 {
                    let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                    let retention_pin = guard.pin(frontier.saturating_sub(retain));
                    let epoch = sharded.pin_epoch();
                    let oracle = epoch.materialize();
                    churn_sessions.push((i, retention_pin, epoch, oracle));
                }
                // Close (and verify) sessions open for ~7 chunks — except
                // a straggler cohort held across the run's end.
                while churn_sessions
                    .first()
                    .is_some_and(|(opened, ..)| i >= opened + 7 && churn_sessions.len() > 2)
                {
                    close_session(
                        churn_sessions.remove(0),
                        &mut sessions_checked,
                        &mut sessions_diverged,
                    );
                }
            }
        }
        if scenario == "sweep-vs-pin" && pin.is_none() && i + 1 == total / 3 {
            // A repair session registers needing history from the current
            // sweep target onwards: as the frontier moves on, every later
            // sweep wants to pass this pin and must be clamped.
            if let Some(retain) = retain {
                let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                pin_at = frontier.saturating_sub(retain);
                pin = Some(guard.pin(pin_at));
            }
        }
        let advance_now = scenario == "sweep-vs-pin" && i + 1 == (2 * total) / 3;
        if advance_now {
            if let (Some(p), Some(retain)) = (pin.as_mut(), retain) {
                // The session's remaining plan shrank: it advances its pin
                // to the current frontier, and the very next sweep passes
                // the old pin while the pin is still held.
                let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                p.advance(frontier);
                let granted = guard.clamp(frontier.saturating_sub(retain));
                if granted > Timestamp::EPOCH {
                    sharded.prune_before(granted);
                    wal.compact_pruned(PRECISION, granted)
                        .map_err(|e| format!("wal compact: {e}"))?;
                }
                post_advance_horizon = Some(granted);
            }
        } else if let Some(retain) = retain {
            if i % 8 == 7 {
                let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                let target = frontier.saturating_sub(retain);
                let granted = guard.clamp(target);
                if pin.is_some() && granted < target {
                    clamped_while_pinned += 1;
                }
                if granted > Timestamp::EPOCH {
                    sharded.prune_before(granted);
                    wal.compact_pruned(PRECISION, granted)
                        .map_err(|e| format!("wal compact: {e}"))?;
                }
            }
        }
    }
    stream.seal();
    drop(pin);

    // Finish: final sweep + shell GC (retention scenarios), or the
    // crash-mid-rebase surgery, or nothing.
    let mut final_horizon = Timestamp::EPOCH;
    let mut did_gc = false;
    let mut shells = 0u64;
    if let Some(retain) = retain {
        let frontier = sharded.last_mutation_time().unwrap_or(Timestamp::EPOCH);
        let granted = guard.clamp(frontier.saturating_sub(retain));
        final_horizon = granted;
        sharded.prune_before(granted);
        shells = sharded.gc_dead_shells();
        did_gc = true;
        wal.flush().map_err(|e| format!("wal flush: {e}"))?;
        wal.compact_pruned_rebased(PRECISION, granted)
            .map_err(|e| format!("wal rebase: {e}"))?;
    }
    wal.flush().map_err(|e| format!("wal flush: {e}"))?;

    // pin-churn stragglers: their epochs were pinned *before* the final
    // sweep, shell-GC and rebase — each must still materialize its
    // pin-time oracle exactly.
    for session in churn_sessions.drain(..) {
        close_session(session, &mut sessions_checked, &mut sessions_diverged);
    }

    let mut orphans_swept = true;
    if scenario == "crash-mid-rebase" {
        // Commit a manifest, then leave behind exactly what a compaction
        // that died between its temp writes and the manifest rename
        // would: an unreferenced base layer and a torn manifest temp.
        wal.compact_pruned_rebased(PRECISION, Timestamp::EPOCH)
            .map_err(|e| format!("wal rebase: {e}"))?;
        let orphan = dir.join("base-9999.ttkv");
        let torn = dir.join("wal.manifest.tmp");
        std::fs::write(&orphan, b"interrupted rebase layer")
            .map_err(|e| format!("plant orphan: {e}"))?;
        std::fs::write(&torn, b"torn manifest write")
            .map_err(|e| format!("plant torn manifest: {e}"))?;
        drop(wal);
        wal = Wal::open(dir).map_err(|e| format!("reopen wal: {e}"))?;
        orphans_swept = !orphan.exists() && !torn.exists();
    }

    let snapshot = sharded.snapshot_store();
    let replayed = wal
        .replay(PRECISION)
        .map_err(|e| format!("wal replay: {e}"))?;
    let live_clustering = stream.clustering();

    let mut checks = standing_checks(
        &engine,
        &replayed,
        &snapshot,
        ReplayRelation::Equal,
        &live_clustering.clustering,
        &reference,
        final_horizon,
        did_gc,
    );
    match scenario {
        "dead-shell-churn" => {
            // The churned keys died before the horizon; GC must have
            // collected their shells, and none may remain afterwards.
            let mut probe = snapshot.clone();
            let remaining = probe.gc_dead_shells();
            checks.push(VoprCheck {
                name: "no-dead-shells",
                passed: shells >= 48 && remaining == 0,
                detail: format!("{shells} shells collected, {remaining} left after GC"),
            });
        }
        "sweep-vs-pin" => {
            let advanced = post_advance_horizon.unwrap_or(Timestamp::EPOCH);
            checks.push(VoprCheck {
                name: "pin-respected-then-advanced",
                passed: clamped_while_pinned >= 1 && advanced > pin_at && final_horizon >= advanced,
                detail: format!(
                    "{clamped_while_pinned} sweeps clamped at pin {}ms, \
                     post-advance horizon {}ms, final {}ms",
                    pin_at.as_millis(),
                    advanced.as_millis(),
                    final_horizon.as_millis(),
                ),
            });
        }
        "pin-churn" => {
            checks.push(check_pin_churn_sessions(
                sessions_checked,
                sessions_diverged,
            ));
            checks.push(check_epoch_equals_clone(
                &snapshot,
                &sharded.snapshot_store_cloned(),
            ));
        }
        "crash-mid-rebase" => {
            checks.push(VoprCheck {
                name: "orphans-swept",
                passed: orphans_swept,
                detail: "reopen removes the orphan layer and the torn manifest temp".into(),
            });
        }
        _ => {}
    }

    let stats = snapshot.stats();
    Ok(VoprOutcome {
        scenario,
        seed,
        machines,
        days,
        mutations: stats.writes + stats.deletes,
        reads: stats.reads,
        checks,
    })
}

// ---------------------------------------------------------------------
// Engine scenarios: the real concurrent engine with a fault plan.
// ---------------------------------------------------------------------

/// Runs one engine scenario: `ingest_live` with an injected [`FaultPlan`],
/// analytics tapped through [`WriteLanes`], then the standing checks plus
/// the scenario's extras.
fn run_engine_scenario(
    scenario: &'static str,
    seed: u64,
    dir: &std::path::Path,
) -> Result<VoprOutcome, String> {
    let (machines_n, days, config, faults) = match scenario {
        "kill-ingest-worker" => (
            4usize,
            3u64,
            FleetConfig {
                shards: 4,
                ingest_threads: 2,
                batch_size: 64,
                precision: PRECISION,
                // Per-machine keyspace so the killed machine's absence is
                // visible in the store itself.
                placement: KeyPlacement::PerMachine,
                retention: None,
                seal_threshold: 256,
            },
            FaultPlan {
                kill_worker_at_machine: Some(1),
                ..FaultPlan::default()
            },
        ),
        "wal-appender-crash" => (
            2usize,
            3u64,
            FleetConfig {
                shards: 4,
                ingest_threads: 1,
                batch_size: 32,
                precision: PRECISION,
                placement: KeyPlacement::Merged,
                retention: None,
                seal_threshold: 256,
            },
            FaultPlan {
                wal_crash_after_frames: Some(5),
                ..FaultPlan::default()
            },
        ),
        "killed-worker-amid-pin-churn" => (
            4usize,
            3u64,
            FleetConfig {
                shards: 4,
                ingest_threads: 2,
                batch_size: 64,
                precision: PRECISION,
                // Per-machine keyspace so the killed machine's absence is
                // visible in the store itself.
                placement: KeyPlacement::PerMachine,
                retention: None,
                // Small enough that pins land mid-seal, not just between
                // quiescent segments.
                seal_threshold: 192,
            },
            FaultPlan {
                kill_worker_at_machine: Some(1),
                ..FaultPlan::default()
            },
        ),
        "crash-mid-sweep" => (
            3usize,
            6u64,
            FleetConfig {
                shards: 4,
                ingest_threads: 2,
                batch_size: 64,
                precision: PRECISION,
                placement: KeyPlacement::Merged,
                retention: Some(RetentionPolicy::keep_days(2)),
                seal_threshold: 256,
            },
            FaultPlan {
                sweeper_stop_after: Some(0),
                ..FaultPlan::default()
            },
        ),
        other => return Err(format!("`{other}` is not an engine scenario")),
    };
    let run_config = FleetRunConfig {
        machines: machines_n,
        days,
        seed,
        apps: vec!["gedit".into(), "evolution".into()],
        engine: config.clone(),
        wal_dir: None,
    };
    let machines = fleet_machines(&run_config)?;
    let mut wal = Wal::open(dir).map_err(|e| format!("open scratch wal: {e}"))?;
    let engine = Ocasta::default();
    let sharded = ShardedTtkv::with_seal_threshold(config.shards, config.seal_threshold);
    let lanes = WriteLanes::new(config.shards);
    let guard = HorizonGuard::new();
    // Epoch pins churned *while* the fault fires (killed-worker-amid-
    // pin-churn only): each pin's immediate materialization is its own
    // oracle, re-checked after ingestion settles.
    let mut churned_pins: Vec<(EpochSnapshot, Ttkv)> = Vec::new();
    let result = if scenario == "killed-worker-amid-pin-churn" {
        let (wal_ref, pins_ref) = (&mut wal, &mut churned_pins);
        std::thread::scope(|scope| {
            let ingest = scope.spawn(|| {
                ingest_live(
                    &machines,
                    &config,
                    &sharded,
                    IngestOptions {
                        wal: Some(wal_ref),
                        tap: Some(&lanes),
                        guard: Some(&guard),
                        metrics: None,
                        faults: Some(&faults),
                    },
                )
            });
            for _ in 0..32 {
                let pin = sharded.pin_epoch();
                let oracle = pin.materialize();
                pins_ref.push((pin, oracle));
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            ingest.join().expect("ingest driver panicked")
        })
    } else {
        ingest_live(
            &machines,
            &config,
            &sharded,
            IngestOptions {
                wal: Some(&mut wal),
                tap: Some(&lanes),
                guard: Some(&guard),
                metrics: None,
                faults: Some(&faults),
            },
        )
    };
    let mut stream = OcastaStream::new(&engine);
    stream.drain_lanes(&lanes);
    stream.seal();
    let snapshot = sharded.snapshot_store();

    // The unbounded deterministic reference: sequential ingestion of the
    // machines that actually contributed, retention off.
    let surviving: Vec<MachineSpec> = match scenario {
        "kill-ingest-worker" | "killed-worker-amid-pin-churn" => machines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, m)| m.clone())
            .collect(),
        _ => machines.clone(),
    };
    let reference_config = FleetConfig {
        retention: None,
        ..config.clone()
    };
    let reference = ingest_sequential(&surviving, &reference_config);

    let replayed = wal
        .replay(PRECISION)
        .map_err(|e| format!("wal replay: {e}"))?;
    let relation = if scenario == "wal-appender-crash" {
        ReplayRelation::StrictPrefix
    } else {
        ReplayRelation::Equal
    };
    let live_clustering = stream.clustering();
    let mut checks = standing_checks(
        &engine,
        &replayed,
        &snapshot,
        relation,
        &live_clustering.clustering,
        &reference,
        Timestamp::EPOCH,
        false,
    );
    match scenario {
        "kill-ingest-worker" | "killed-worker-amid-pin-churn" => {
            let named_right = matches!(
                &result,
                Err(IngestError::WorkerPanicked {
                    machine: Some(name),
                    ..
                }) if name == "m001"
            );
            let killed_absent = snapshot.keys().all(|k| !k.as_str().starts_with("m001/"));
            let survivors_present = snapshot.keys().any(|k| k.as_str().starts_with("m000/"))
                && snapshot.keys().any(|k| k.as_str().starts_with("m003/"));
            checks.push(VoprCheck {
                name: "killed-machine-excluded",
                passed: named_right && killed_absent && survivors_present,
                detail: format!(
                    "error names m001: {named_right}, m001 keys absent: {killed_absent}, \
                     survivors present: {survivors_present}"
                ),
            });
            if scenario == "killed-worker-amid-pin-churn" {
                let diverged = churned_pins
                    .iter()
                    .filter(|(pin, oracle)| &pin.materialize() != oracle)
                    .count() as u64;
                let totals: Vec<u64> = churned_pins
                    .iter()
                    .map(|(_, oracle)| {
                        let s = oracle.stats();
                        s.writes + s.deletes
                    })
                    .collect();
                checks.push(check_pin_churn_sessions(
                    churned_pins.len() as u64,
                    diverged,
                ));
                checks.push(check_pin_monotonicity(&totals));
                checks.push(check_epoch_equals_clone(
                    &snapshot,
                    &sharded.snapshot_store_cloned(),
                ));
            }
        }
        "wal-appender-crash" => {
            let (r, l) = (replayed.stats(), snapshot.stats());
            checks.push(VoprCheck {
                name: "wal-lane-died-silently",
                passed: result.is_ok() && r.writes + r.deletes < l.writes + l.deletes,
                detail: format!(
                    "ingest ok: {}, replayed {} of {} mutations",
                    result.is_ok(),
                    r.writes + r.deletes,
                    l.writes + l.deletes,
                ),
            });
        }
        "crash-mid-sweep" => {
            let retention = result.as_ref().ok().and_then(|r| r.retention.as_ref());
            let stopped_clean =
                retention.is_some_and(|r| r.sweeps == 0 && r.horizon.is_none() && r.shells == 0);
            checks.push(VoprCheck {
                name: "sweeper-stopped-clean",
                passed: stopped_clean,
                detail: format!(
                    "retention report: {:?}",
                    retention.map(|r| (r.sweeps, r.horizon, r.shells)),
                ),
            });
        }
        _ => {}
    }

    let stats = snapshot.stats();
    Ok(VoprOutcome {
        scenario,
        seed,
        machines: machines_n,
        days,
        mutations: stats.writes + stats.deletes,
        reads: stats.reads,
        checks,
    })
}

// ---------------------------------------------------------------------
// The standing four, shared by both scenario classes.
// ---------------------------------------------------------------------

/// Runs the four standing invariant checks in canonical order.
#[allow(clippy::too_many_arguments)]
fn standing_checks(
    engine: &Ocasta,
    replayed: &Ttkv,
    snapshot: &Ttkv,
    relation: ReplayRelation,
    live_clustering: &Clustering,
    reference: &Ttkv,
    final_horizon: Timestamp,
    did_gc: bool,
) -> Vec<VoprCheck> {
    let batch = engine.cluster_store(reference);
    let (sequential, parallel) = search_both_ways(engine, snapshot);
    vec![
        check_replay_matches_store(replayed, snapshot, relation),
        check_stream_equals_batch(live_clustering, &batch),
        check_retention_equivalence(snapshot, reference, final_horizon, did_gc),
        check_parallel_equals_sequential(&sequential, &parallel),
    ]
}

/// Runs the repair search over the final snapshot twice — sequentially
/// and with three concurrent trial executors — with a never-satisfied
/// oracle, so both sides walk the whole bounded plan.
fn search_both_ways(engine: &Ocasta, snapshot: &Ttkv) -> (SearchOutcome, SearchOutcome) {
    let clusters = ocasta_repair::singleton_clusters(snapshot);
    let frontier = snapshot.last_mutation_time().unwrap_or(Timestamp::EPOCH);
    let config = SearchConfig {
        strategy: SearchStrategy::Dfs,
        window: TimeDelta::from_millis(engine.params().window_ms),
        start_time: Some(frontier.saturating_sub(TimeDelta::from_days(1))),
        ..SearchConfig::default()
    };
    let trial = Trial::new("vopr-probe", |state| {
        let mut shot = Screenshot::new();
        shot.add_if(!state.is_empty(), "populated");
        shot.add("frame");
        shot
    });
    let oracle = FixOracle::element_visible("never-rendered");
    let sequential = search(snapshot, &clusters, &trial, &oracle, &config);
    let parallel = parallel_search(snapshot, &clusters, &trial, &oracle, &config, 3);
    (sequential, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::Key;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn small_store() -> Ttkv {
        let mut store = Ttkv::new();
        store.write(ts(10), "app/a", Value::from(1));
        store.write(ts(20), "app/b", Value::from(2));
        store.delete(ts(30), "app/a");
        store.add_reads(Key::new("app/b"), 4);
        store
    }

    #[test]
    fn scenario_names_are_stable_and_unknown_names_rejected() {
        assert_eq!(vopr_scenario_names().len(), 13);
        assert!(vopr_scenario_names().contains(&"pin-churn"));
        assert!(vopr_scenario_names().contains(&"killed-worker-amid-pin-churn"));
        assert!(vopr_scenario_names().contains(&"baseline"));
        let err = run_vopr("warp-core-breach", 7).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("baseline"), "lists valid names: {err}");
    }

    // Satellite: mutation-style tests — every checker must FAIL when fed
    // deliberately broken input, or a regressed invariant would sail
    // through as a green verdict.

    #[test]
    fn replay_check_fails_on_divergence() {
        let live = small_store();
        assert!(check_replay_matches_store(&live.clone(), &live, ReplayRelation::Equal).passed);

        let mut diverged = live.clone();
        diverged.write(ts(99), "app/extra", Value::from(true));
        assert!(
            !check_replay_matches_store(&diverged, &live, ReplayRelation::Equal).passed,
            "an extra replayed write must fail the equality check"
        );

        // Strict prefix: a true prefix passes…
        let mut prefix = Ttkv::new();
        prefix.write(ts(10), "app/a", Value::from(1));
        assert!(check_replay_matches_store(&prefix, &live, ReplayRelation::StrictPrefix).passed);
        // …an identical store is not *strict*…
        assert!(
            !check_replay_matches_store(&live.clone(), &live, ReplayRelation::StrictPrefix).passed
        );
        // …and a replay holding a key the live store lacks must fail.
        let mut superset = Ttkv::new();
        superset.write(ts(10), "app/ghost", Value::from(1));
        assert!(!check_replay_matches_store(&superset, &live, ReplayRelation::StrictPrefix).passed);
    }

    #[test]
    fn stream_check_fails_on_divergent_clusterings() {
        let engine = Ocasta::default();
        let store = small_store();
        let same = engine.cluster_store(&store);
        assert!(check_stream_equals_batch(&same, &engine.cluster_store(&store)).passed);

        let mut other_store = store.clone();
        other_store.write(ts(10), "app/c", Value::from(3));
        let other = engine.cluster_store(&other_store);
        assert!(
            !check_stream_equals_batch(&same, &other).passed,
            "a clustering missing a key must fail"
        );
    }

    #[test]
    fn retention_check_fails_on_wrong_horizon_or_skipped_gc() {
        // Unbounded reference with a key that dies before the horizon.
        let mut unbounded = Ttkv::new();
        unbounded.write(ts(10), "app/doomed", Value::from(1));
        unbounded.delete(ts(20), "app/doomed");
        unbounded.write(ts(1_000), "app/alive", Value::from(2));

        let mut retained = unbounded.clone();
        retained.prune_before(ts(500));
        let collected = retained.gc_dead_shells();
        assert_eq!(collected, 1);
        assert!(check_retention_equivalence(&retained, &unbounded, ts(500), true).passed);

        // Mutations: wrong horizon, and GC flag that does not match the run.
        assert!(!check_retention_equivalence(&retained, &unbounded, ts(5), true).passed);
        assert!(
            !check_retention_equivalence(&retained, &unbounded, ts(500), false).passed,
            "a run that GC'd must not verify against an un-GC'd expectation"
        );
    }

    #[test]
    fn search_check_fails_on_perturbed_outcome() {
        let engine = Ocasta::default();
        let store = small_store();
        let (sequential, parallel) = search_both_ways(&engine, &store);
        assert!(check_parallel_equals_sequential(&sequential, &parallel).passed);

        let mut skewed = parallel.clone();
        skewed.total_trials += 1;
        assert!(
            !check_parallel_equals_sequential(&sequential, &skewed).passed,
            "one extra trial must fail the field-for-field comparison"
        );
    }

    #[test]
    fn epoch_clone_check_fails_on_divergence() {
        let store = small_store();
        assert!(check_epoch_equals_clone(&store, &store.clone()).passed);

        let mut diverged = store.clone();
        diverged.write(ts(99), "app/extra", Value::from(true));
        assert!(
            !check_epoch_equals_clone(&store, &diverged).passed,
            "an epoch pin that drifted from the clone oracle must fail"
        );
    }

    #[test]
    fn pin_churn_check_fails_on_divergence_or_empty_run() {
        assert!(check_pin_churn_sessions(12, 0).passed);
        assert!(
            !check_pin_churn_sessions(12, 1).passed,
            "one diverged session must fail the check"
        );
        assert!(
            !check_pin_churn_sessions(0, 0).passed,
            "a run that opened no sessions proves nothing and must fail"
        );
    }

    #[test]
    fn pin_monotonicity_check_detects_inversions() {
        assert!(check_pin_monotonicity(&[1, 5, 5, 9]).passed);
        assert!(check_pin_monotonicity(&[]).passed, "vacuously monotone");
        assert!(
            !check_pin_monotonicity(&[1, 9, 5]).passed,
            "a later pin with fewer mutations than an earlier one is an inversion"
        );
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        let mut sa = mix_seed(42);
        let mut sb = mix_seed(42);
        shuffle(&mut a, &mut sa);
        shuffle(&mut b, &mut sb);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..32).collect();
        let mut sc = mix_seed(43);
        shuffle(&mut c, &mut sc);
        assert_ne!(a, c, "different seeds shuffle differently");
    }

    #[test]
    fn report_renders_failures_with_detail() {
        let outcome = VoprOutcome {
            scenario: "baseline",
            seed: 7,
            machines: 3,
            days: 4,
            mutations: 100,
            reads: 200,
            checks: vec![
                VoprCheck {
                    name: "replay-matches-store",
                    passed: true,
                    detail: "irrelevant".into(),
                },
                VoprCheck {
                    name: "retention-equivalence",
                    passed: false,
                    detail: "retained 1 keys vs expected 2 keys".into(),
                },
            ],
        };
        assert!(!outcome.passed());
        let report = outcome.report();
        assert!(report.contains("vopr scenario=baseline seed=7"));
        assert!(report.contains("check replay-matches-store: PASS"));
        assert!(report.contains("check retention-equivalence: FAIL - retained 1 keys"));
        assert!(report.contains("verdict: FAIL (2 checks, 1 failures)"));
    }
}
