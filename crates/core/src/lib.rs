//! # ocasta — clustering configuration settings for error recovery
//!
//! A from-scratch Rust reproduction of *Ocasta: Clustering Configuration
//! Settings For Error Recovery* (Zhen Huang and David Lie, DSN 2014,
//! [arXiv:1711.04030](https://arxiv.org/abs/1711.04030)).
//!
//! Configuration errors often involve **more than one setting**: Microsoft
//! Word's `Max Display` bounds its `Item N` MRU entries; Evolution's
//! `mark_seen_timeout` only matters while `mark_seen` is on. Ocasta watches
//! an application's accesses to its configuration store (black-box), groups
//! settings that are *modified together* with hierarchical agglomerative
//! clustering, and repairs errors by rolling back whole clusters of
//! historical values until the symptom disappears from the screen.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`ocasta_ttkv`] | time-travel key-value store (the paper used Redis) |
//! | [`ocasta_cluster`] | correlation metric + HAC with threshold pruning |
//! | [`ocasta_parsers`] | JSON/XML/INI/plain/PostScript loggers + flush diff |
//! | [`ocasta_trace`] | access events, trace files, workload generator |
//! | [`ocasta_apps`] | the 11 evaluated applications + 16 real errors |
//! | [`ocasta_repair`] | trials, screenshots, parallel rollback search, repair sessions |
//! | [`ocasta_fleet`] | concurrent multi-machine ingestion: sharded TTKV + WAL |
//!
//! ## Quick start
//!
//! ```
//! use ocasta::{Ocasta, Timestamp, Ttkv, Value};
//!
//! // 1. Record configuration accesses (normally a logger does this).
//! let mut store = Ttkv::new();
//! for day in 0..5u64 {
//!     let t = Timestamp::from_days(day);
//!     store.write(t, "mail/mark_seen", Value::from(day % 2 == 0));
//!     store.write(t, "mail/mark_seen_timeout", Value::from(1500 + day as i64));
//! }
//!
//! // 2. Cluster related settings from co-modification statistics.
//! let clustering = Ocasta::default().cluster_store(&store);
//! assert_eq!(clustering.cluster_of("mail/mark_seen").unwrap().len(), 2);
//! ```
//!
//! See `examples/` for end-to-end repair walkthroughs, and `ocasta-bench`
//! for the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod accuracy;
pub mod fleet;
mod metrics;
mod pipeline;
mod scenario;
mod service;
mod stream;
mod vopr;

pub use accuracy::{evaluate_all, evaluate_model, score, AccuracySummary, AppAccuracy};
pub use fleet::{run_fleet, run_fleet_observed, FleetRun, FleetRunConfig};
pub use metrics::{ServiceMetrics, StreamMetrics};
pub use pipeline::{Clustering, Ocasta};
pub use scenario::{prepare_store, run_noclust, run_scenario, ScenarioConfig, ScenarioOutcome};
pub use service::{
    run_repair_service, run_repair_service_observed, RepairServiceConfig, RepairServiceRun,
    ServiceObservers, UserRepair,
};
pub use stream::{OcastaStream, StreamClustering, StreamHorizon};
pub use vopr::{
    check_parallel_equals_sequential, check_replay_matches_store, check_retention_equivalence,
    check_stream_equals_batch, run_vopr, vopr_scenario_names, ReplayRelation, VoprCheck,
    VoprOutcome,
};

// Re-export the pieces users need without adding every sub-crate to their
// dependency list.
pub use ocasta_apps::{all_models, model_by_name, scenarios, AppModel, ErrorScenario, LoggerKind};
pub use ocasta_cluster::{
    cluster_correlations, cluster_events, hac, transactions, ClusterParams, Correlations,
    Dendrogram, DistanceMatrix, IncrementalCorrelations, Linkage, PartitionStats,
    TransactionWindow, WriteEvent,
};
pub use ocasta_fleet::{
    diagnose, ingest as fleet_ingest, ingest_into as fleet_ingest_into,
    ingest_live as fleet_ingest_live, ingest_observed as fleet_ingest_observed,
    ingest_tapped as fleet_ingest_tapped, DoctorReport, FaultPlan, Finding, FleetConfig,
    FleetMetrics, FleetReport, IngestError, IngestOptions, IngestTap, KeyPlacement, MachineSpec,
    RetentionPolicy, RetentionReport, Severity, ShardedTtkv, Wal, WalError, WalReader, WalWriter,
    WriteLanes, WAL_MAGIC,
};
pub use ocasta_obs::{Counter, Gauge, Histogram, Registry};
pub use ocasta_parsers::{
    detect_format, diff_flush, parse, write, FlatConfig, FlushChange, Format, Node,
    ParseConfigError,
};
pub use ocasta_repair::{
    parallel_search, search, simulate_case, singleton_clusters, CaseUserModel, CatalogHorizon,
    ClusterCatalog, FixOracle, RepairSession, Screenshot, SearchConfig, SearchOutcome,
    SearchStrategy, SessionReport, SyncGallery, Trial, UserStudyParams,
};
pub use ocasta_trace::{
    generate, mutation_feed, AccessEvent, EventStream, GeneratorConfig, MachineProfile, Mutation,
    OsFlavor, Trace, TraceOp, TraceStats, WorkloadSpec, TABLE1_PROFILES,
};
pub use ocasta_ttkv::{
    ConfigState, HorizonGuard, HorizonPin, Key, KeyRecord, PruneStats, TimeDelta, TimePrecision,
    Timestamp, Ttkv, TtkvBuilder, TtkvError, TtkvStats, Value, Version,
};
