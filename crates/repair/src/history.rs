//! Cluster version history: the rollback candidates the search walks.

use ocasta_cluster::{TransactionWindow, WriteEvent};
use ocasta_ttkv::{ConfigState, Key, TimeDelta, Timestamp, Ttkv};

/// One cluster's searchable state: its keys, modification statistics and
/// rollback candidates.
///
/// A *version* is a co-modification transaction of the cluster's keys
/// (writes grouped by the sliding window); rolling back to a version means
/// restoring every member key to its value just **before** that transaction
/// — undoing it. The paper's repair tool enumerates exactly these candidates
/// between the user's optional start and end bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterInfo {
    /// Member keys.
    pub keys: Vec<Key>,
    /// Total modifications over the whole recorded history (the repair
    /// tool's sort key: rarely-modified clusters are likely configuration).
    pub modifications: u64,
    /// Most recent modification ever recorded, if any — taken from the
    /// per-record last-mutation watermark
    /// ([`ocasta_ttkv::KeyRecord::last_mutation_watermark`]), not from the
    /// surviving mutation times, so it is identical at every prune depth.
    /// This is the sort tie-break (see [`sorted_cluster_infos`]); deriving
    /// it from surviving times used to let equally-modified clusters
    /// renumber ranks once a sweep reclaimed the newest mutation
    /// (regression-tested in `ranks_are_stable_across_prune_depths`).
    pub last_modified: Option<Timestamp>,
    /// Transaction start times within the search bounds, newest first.
    pub versions: Vec<Timestamp>,
}

impl ClusterInfo {
    /// Builds the version history of a cluster from the TTKV.
    ///
    /// `window` is the co-modification window used to group member-key
    /// mutations into transactions; `start`/`end` bound which transactions
    /// are searchable (both inclusive; `None` means unbounded).
    pub fn build(
        ttkv: &Ttkv,
        keys: Vec<Key>,
        window: TimeDelta,
        start: Option<Timestamp>,
        end: Option<Timestamp>,
    ) -> Self {
        let mut times: Vec<Timestamp> = keys
            .iter()
            .filter_map(|k| ttkv.record(k.as_str()))
            .flat_map(|r| r.mutation_times().collect::<Vec<_>>())
            .collect();
        times.sort_unstable();
        let modifications = keys
            .iter()
            .filter_map(|k| ttkv.record(k.as_str()))
            .map(|r| r.modifications())
            .sum();
        // The watermark, not `times.last()`: surviving mutation times
        // shrink as retention sweeps deepen, and the sort tie-break must
        // not move with them.
        let last_modified = keys
            .iter()
            .filter_map(|k| ttkv.record(k.as_str()))
            .filter_map(|r| r.last_mutation_watermark())
            .max();

        // Group into transactions through the workspace's one windowing
        // rule (`ocasta_cluster::TransactionWindow`) — the same core the
        // batch and streaming clusterings run on, so a catalog pinned from
        // a live stream and the rollback candidates enumerated here agree
        // on what a transaction *is*.
        let mut grouper = TransactionWindow::new(window.as_millis());
        let mut txn_starts: Vec<Timestamp> = Vec::new();
        for &t in &times {
            if !grouper.is_open() || grouper.would_close(t.as_millis()) {
                txn_starts.push(t);
            }
            grouper.push(WriteEvent::new(0, t.as_millis()));
            debug_assert_eq!(
                grouper.open_since(),
                txn_starts.last().map(|s| s.as_millis()),
            );
        }
        let mut versions: Vec<Timestamp> = txn_starts
            .into_iter()
            .filter(|&t| start.is_none_or(|s| t >= s) && end.is_none_or(|e| t <= e))
            .collect();
        versions.reverse(); // newest first

        ClusterInfo {
            keys,
            modifications,
            last_modified,
            versions,
        }
    }

    /// Number of member keys.
    pub fn size(&self) -> usize {
        self.keys.len()
    }

    /// The rollback patch for version `at`: every member key's value just
    /// before that transaction started (`None` = the key did not exist and
    /// must be removed).
    pub fn rollback_patch(
        &self,
        ttkv: &Ttkv,
        at: Timestamp,
    ) -> Vec<(Key, Option<ocasta_ttkv::Value>)> {
        let before = at.saturating_sub(TimeDelta::from_millis(1));
        self.keys
            .iter()
            .map(|k| (k.clone(), ttkv.value_at(k.as_str(), before).cloned()))
            .collect()
    }

    /// Applies the rollback for version `at` to a sandbox copy of `base`.
    pub fn apply_rollback(&self, ttkv: &Ttkv, at: Timestamp, base: &ConfigState) -> ConfigState {
        let mut sandbox = base.clone();
        for (key, value) in self.rollback_patch(ttkv, at) {
            match value {
                Some(v) => {
                    sandbox.set(key, v);
                }
                None => {
                    sandbox.remove(key.as_str());
                }
            }
        }
        sandbox
    }
}

/// Builds [`ClusterInfo`]s for every cluster and sorts them the way Ocasta's
/// repair tool does: ascending by modification count (configuration settings
/// change rarely), breaking ties toward the most recently modified cluster.
pub fn sorted_cluster_infos(
    ttkv: &Ttkv,
    clusters: &[Vec<Key>],
    window: TimeDelta,
    start: Option<Timestamp>,
    end: Option<Timestamp>,
) -> Vec<ClusterInfo> {
    let mut infos: Vec<ClusterInfo> = clusters
        .iter()
        .map(|keys| ClusterInfo::build(ttkv, keys.clone(), window, start, end))
        .filter(|info| info.modifications > 0)
        .collect();
    infos.sort_by(|a, b| {
        a.modifications
            .cmp(&b.modifications)
            .then_with(|| b.last_modified.cmp(&a.last_modified))
            .then_with(|| a.keys.cmp(&b.keys))
    });
    infos
}

/// The NoClust baseline's "clustering": every modified key by itself.
pub fn singleton_clusters(ttkv: &Ttkv) -> Vec<Vec<Key>> {
    ttkv.modified_keys().map(|k| vec![k.clone()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::Value;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn store() -> Ttkv {
        let mut ttkv = Ttkv::new();
        // Cluster {a, b}: changed together at t=100 and t=5000.
        ttkv.write(ts(100), "app/a", Value::from(1));
        ttkv.write(ts(100), "app/b", Value::from(10));
        ttkv.write(ts(5000), "app/a", Value::from(2));
        ttkv.write(ts(5000), "app/b", Value::from(20));
        // Unrelated key.
        ttkv.write(ts(3000), "app/c", Value::from(true));
        ttkv
    }

    #[test]
    fn versions_group_by_window_newest_first() {
        let info = ClusterInfo::build(
            &store(),
            vec![Key::new("app/a"), Key::new("app/b")],
            TimeDelta::from_secs(1),
            None,
            None,
        );
        assert_eq!(info.versions, vec![ts(5000), ts(100)]);
        assert_eq!(info.modifications, 4);
        assert_eq!(info.size(), 2);
        assert_eq!(info.last_modified, Some(ts(5000)));
    }

    #[test]
    fn bounds_filter_versions() {
        let keys = vec![Key::new("app/a"), Key::new("app/b")];
        let info = ClusterInfo::build(
            &store(),
            keys.clone(),
            TimeDelta::from_secs(1),
            Some(ts(1000)),
            None,
        );
        assert_eq!(info.versions, vec![ts(5000)]);
        let info = ClusterInfo::build(
            &store(),
            keys,
            TimeDelta::from_secs(1),
            None,
            Some(ts(1000)),
        );
        assert_eq!(info.versions, vec![ts(100)]);
    }

    #[test]
    fn rollback_restores_pre_transaction_values() {
        let ttkv = store();
        let info = ClusterInfo::build(
            &ttkv,
            vec![Key::new("app/a"), Key::new("app/b")],
            TimeDelta::from_secs(1),
            None,
            None,
        );
        let base = ttkv.snapshot_latest();
        assert_eq!(base.get_int("app/a"), Some(2));
        // Undo the t=5000 transaction.
        let rolled = info.apply_rollback(&ttkv, ts(5000), &base);
        assert_eq!(rolled.get_int("app/a"), Some(1));
        assert_eq!(rolled.get_int("app/b"), Some(10));
        assert_eq!(rolled.get_bool("app/c"), Some(true), "other keys untouched");
        // Undo the t=100 transaction: keys did not exist before it.
        let rolled = info.apply_rollback(&ttkv, ts(100), &base);
        assert_eq!(rolled.get("app/a"), None);
        assert_eq!(rolled.get("app/b"), None);
    }

    #[test]
    fn rollback_recreates_deleted_keys() {
        let mut ttkv = store();
        ttkv.delete(ts(9000), "app/a");
        let info = ClusterInfo::build(
            &ttkv,
            vec![Key::new("app/a")],
            TimeDelta::from_secs(1),
            None,
            None,
        );
        let base = ttkv.snapshot_latest();
        assert_eq!(base.get("app/a"), None);
        // Undo the deletion transaction (t=9000): the key comes back.
        let rolled = info.apply_rollback(&ttkv, ts(9000), &base);
        assert_eq!(rolled.get_int("app/a"), Some(2));
    }

    #[test]
    fn sort_prefers_rarely_modified_then_recent() {
        let ttkv = store();
        let clusters = vec![
            vec![Key::new("app/a"), Key::new("app/b")], // 4 modifications
            vec![Key::new("app/c")],                    // 1 modification
        ];
        let infos = sorted_cluster_infos(&ttkv, &clusters, TimeDelta::from_secs(1), None, None);
        assert_eq!(infos[0].keys, vec![Key::new("app/c")]);
        assert_eq!(infos[1].size(), 2);
    }

    #[test]
    fn unmodified_clusters_are_dropped() {
        let ttkv = store();
        let clusters = vec![vec![Key::new("app/never_written")]];
        let infos = sorted_cluster_infos(&ttkv, &clusters, TimeDelta::from_secs(1), None, None);
        assert!(infos.is_empty());
    }

    #[test]
    fn singleton_clusters_cover_modified_keys() {
        let singles = singleton_clusters(&store());
        assert_eq!(singles.len(), 3);
        assert!(singles.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn ranks_are_stable_across_prune_depths() {
        // Regression (ROADMAP "rank-stable sorts on pruned stores"): two
        // equally-modified clusters are tie-broken on last_modified; when
        // that was derived from *surviving* mutation times, pruning both
        // clusters to zero versions erased the tie-break and the pair
        // renumbered on the key-order fallback. The per-record watermark
        // keeps `fix.cluster_rank` identical at every horizon.
        let mut ttkv = Ttkv::new();
        ttkv.write(ts(1), "app/a", Value::from(1));
        ttkv.write(ts(2), "app/a", Value::from(2));
        ttkv.write(ts(3), "app/b", Value::from(3));
        ttkv.write(ts(4), "app/b", Value::from(4));
        let clusters = vec![vec![Key::new("app/a")], vec![Key::new("app/b")]];

        let rank_keys = |store: &Ttkv| -> Vec<Vec<Key>> {
            sorted_cluster_infos(store, &clusters, TimeDelta::from_millis(1), None, None)
                .into_iter()
                .map(|info| info.keys)
                .collect()
        };
        let reference = rank_keys(&ttkv);
        // Both modified twice; app/b modified later, so it ranks first.
        assert_eq!(
            reference,
            vec![vec![Key::new("app/b")], vec![Key::new("app/a")]]
        );
        // Horizons that prune one cluster partially, one fully, and both
        // fully (at ts(5) both histories are gone entirely).
        for horizon in [0u64, 2, 3, 5, 100] {
            let mut pruned = ttkv.clone();
            pruned.prune_before(ts(horizon));
            assert_eq!(rank_keys(&pruned), reference, "horizon {horizon}");
            let infos =
                sorted_cluster_infos(&pruned, &clusters, TimeDelta::from_millis(1), None, None);
            assert_eq!(infos[0].last_modified, Some(ts(4)), "horizon {horizon}");
            assert_eq!(infos[1].last_modified, Some(ts(2)), "horizon {horizon}");
        }
    }
}
