//! Screenshots: the visible state of an application under a trial.
//!
//! The real tool captures pixel screenshots after every trial execution and
//! discards duplicates (§III-B). In this reproduction a screenshot is a
//! structured set of visible UI elements produced by a deterministic render
//! function; equality plays the role of pixel-identity.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

/// The rendered, user-visible state of an application.
///
/// Elements are short strings such as `"menu_bar"`, `"recent_documents:5"`
/// or `"offline_banner"`. Two screenshots are duplicates iff their element
/// sets are equal.
///
/// # Examples
///
/// ```
/// use ocasta_repair::Screenshot;
///
/// let mut shot = Screenshot::new();
/// shot.add("menu_bar");
/// shot.add(format!("recent_documents:{}", 4));
/// assert!(shot.contains("menu_bar"));
/// assert!(shot.contains_prefix("recent_documents:"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Screenshot {
    elements: BTreeSet<String>,
}

impl Screenshot {
    /// Creates an empty (blank) screenshot.
    pub fn new() -> Self {
        Screenshot::default()
    }

    /// Adds a visible element.
    pub fn add(&mut self, element: impl Into<String>) {
        self.elements.insert(element.into());
    }

    /// Adds a visible element when `condition` holds (the common "this
    /// widget is shown iff a setting is on" pattern).
    pub fn add_if(&mut self, condition: bool, element: impl Into<String>) {
        if condition {
            self.add(element);
        }
    }

    /// `true` if the exact element is visible.
    pub fn contains(&self, element: &str) -> bool {
        self.elements.contains(element)
    }

    /// `true` if any element starts with `prefix`.
    pub fn contains_prefix(&self, prefix: &str) -> bool {
        self.elements
            .range(prefix.to_owned()..)
            .next()
            .is_some_and(|e| e.starts_with(prefix))
    }

    /// The element starting with `prefix`, if any.
    pub fn element_with_prefix(&self, prefix: &str) -> Option<&str> {
        self.elements
            .range(prefix.to_owned()..)
            .next()
            .filter(|e| e.starts_with(prefix))
            .map(String::as_str)
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` if nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterates visible elements in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.elements.iter().map(String::as_str)
    }
}

impl fmt::Display for Screenshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl<S: Into<String>> FromIterator<S> for Screenshot {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Screenshot {
            elements: iter.into_iter().map(Into::into).collect(),
        }
    }
}

/// The screenshot gallery the user periodically checks: stores only unique
/// screenshots, discarding any that equal the erroneous baseline or an
/// already-recorded shot (§III-B).
#[derive(Debug, Clone, Default)]
pub struct ScreenshotGallery {
    baseline: Option<Screenshot>,
    unique: Vec<Screenshot>,
}

impl ScreenshotGallery {
    /// Creates a gallery with the erroneous screenshot as baseline.
    pub fn with_baseline(baseline: Screenshot) -> Self {
        ScreenshotGallery {
            baseline: Some(baseline),
            unique: Vec::new(),
        }
    }

    /// Records a trial screenshot. Returns `true` if it was new (kept),
    /// `false` if it duplicated the baseline or a previous screenshot.
    pub fn record(&mut self, shot: Screenshot) -> bool {
        if self.baseline.as_ref() == Some(&shot) || self.unique.contains(&shot) {
            return false;
        }
        self.unique.push(shot);
        true
    }

    /// The unique screenshots recorded so far, in recording order.
    pub fn screenshots(&self) -> &[Screenshot] {
        &self.unique
    }

    /// Number of unique screenshots (what the user must examine —
    /// Table IV's `Screens` column).
    pub fn len(&self) -> usize {
        self.unique.len()
    }

    /// `true` if no unique screenshot has been recorded.
    pub fn is_empty(&self) -> bool {
        self.unique.is_empty()
    }
}

/// A thread-safe [`ScreenshotGallery`]: screenshot dedup that is safe to
/// share across threads.
///
/// Recording takes `&self`, so the gallery can be held by reference from
/// many threads at once (the doctest below races eight recorders); the
/// dedup rule — drop anything equal to the baseline or to an already-kept
/// screenshot — is identical to the sequential gallery's. One caveat
/// governs how the parallel search uses it: when *counts at a given
/// moment* must match a sequential execution (the `screenshots_to_fix`
/// column), recording order must be serialised, so
/// [`parallel_search`](crate::parallel_search) runs trials concurrently
/// but routes every `record` through its in-plan-order fold (see
/// `DESIGN.md §5.8`).
///
/// # Examples
///
/// ```
/// use ocasta_repair::{Screenshot, SyncGallery};
///
/// let baseline: Screenshot = ["broken"].into_iter().collect();
/// let gallery = SyncGallery::with_baseline(baseline);
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let gallery = &gallery;
///         scope.spawn(move || {
///             gallery.record(["fixed"].into_iter().collect());
///         });
///     }
/// });
/// assert_eq!(gallery.len(), 1, "duplicates dropped across threads");
/// ```
#[derive(Debug, Default)]
pub struct SyncGallery {
    inner: Mutex<ScreenshotGallery>,
}

impl SyncGallery {
    /// Creates a thread-safe gallery with the erroneous baseline screenshot.
    pub fn with_baseline(baseline: Screenshot) -> Self {
        SyncGallery {
            inner: Mutex::new(ScreenshotGallery::with_baseline(baseline)),
        }
    }

    /// Records a trial screenshot; returns `true` if it was new (kept).
    pub fn record(&self, shot: Screenshot) -> bool {
        self.inner
            .lock()
            .expect("gallery lock poisoned")
            .record(shot)
    }

    /// Number of unique screenshots recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("gallery lock poisoned").len()
    }

    /// `true` if no unique screenshot has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unwraps into the plain gallery once all recording threads are done.
    pub fn into_gallery(self) -> ScreenshotGallery {
        self.inner.into_inner().expect("gallery lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_insertion_order() {
        let a: Screenshot = ["x", "y"].into_iter().collect();
        let mut b = Screenshot::new();
        b.add("y");
        b.add("x");
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_queries() {
        let shot: Screenshot = ["recent:5", "menu_bar"].into_iter().collect();
        assert!(shot.contains_prefix("recent:"));
        assert_eq!(shot.element_with_prefix("recent:"), Some("recent:5"));
        assert_eq!(shot.element_with_prefix("toolbar"), None);
        assert!(!shot.contains_prefix("zzz"));
    }

    #[test]
    fn add_if_respects_condition() {
        let mut shot = Screenshot::new();
        shot.add_if(false, "hidden");
        shot.add_if(true, "shown");
        assert!(!shot.contains("hidden"));
        assert!(shot.contains("shown"));
        assert_eq!(shot.len(), 1);
    }

    #[test]
    fn gallery_deduplicates_against_baseline_and_history() {
        let broken: Screenshot = ["window"].into_iter().collect();
        let mut gallery = ScreenshotGallery::with_baseline(broken.clone());
        assert!(
            !gallery.record(broken.clone()),
            "baseline duplicate dropped"
        );
        let healthy: Screenshot = ["window", "menu_bar"].into_iter().collect();
        assert!(gallery.record(healthy.clone()));
        assert!(!gallery.record(healthy), "repeat dropped");
        assert_eq!(gallery.len(), 1);
    }

    #[test]
    fn display_lists_elements() {
        let shot: Screenshot = ["b", "a"].into_iter().collect();
        assert_eq!(shot.to_string(), "[a, b]");
    }

    #[test]
    fn sync_gallery_dedups_under_concurrent_recording() {
        let baseline: Screenshot = ["window"].into_iter().collect();
        let gallery = SyncGallery::with_baseline(baseline.clone());
        // 8 threads race to record 4 distinct shots (plus baseline dups).
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let gallery = &gallery;
                let baseline = baseline.clone();
                scope.spawn(move || {
                    for i in 0..4u64 {
                        let shot: Screenshot =
                            ["window".to_owned(), format!("panel:{}", (worker + i) % 4)]
                                .into_iter()
                                .collect();
                        gallery.record(shot);
                        gallery.record(baseline.clone());
                    }
                });
            }
        });
        assert_eq!(gallery.len(), 4);
        assert_eq!(gallery.into_gallery().screenshots().len(), 4);
    }
}
