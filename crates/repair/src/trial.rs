//! Trials: the user-recorded reproduction of a configuration error.
//!
//! A trial in the real system is a recorded GUI-action script replayed
//! against the application in a sandbox, ending with the error's symptom
//! visible on screen (§III-B). Here a trial is a deterministic render of the
//! application's visible state from a configuration snapshot, plus the
//! user's ability to recognise a fixed screenshot.

use std::sync::Arc;

use ocasta_ttkv::ConfigState;

use crate::screenshot::Screenshot;

/// A user-provided trial: replaying it against a configuration produces the
/// application's visible state.
///
/// Cloning shares the underlying render function.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{Screenshot, Trial};
/// use ocasta_ttkv::ConfigState;
///
/// let trial = Trial::new("open a PDF", |config| {
///     let mut shot = Screenshot::new();
///     shot.add_if(config.get_bool("acrobat/menu_bar").unwrap_or(true), "menu_bar");
///     shot
/// });
/// let shot = trial.run(&ConfigState::new());
/// assert!(shot.contains("menu_bar"));
/// ```
#[derive(Clone)]
pub struct Trial {
    description: String,
    render: Arc<dyn Fn(&ConfigState) -> Screenshot + Send + Sync>,
}

impl Trial {
    /// Creates a trial from a render function.
    pub fn new<F>(description: impl Into<String>, render: F) -> Self
    where
        F: Fn(&ConfigState) -> Screenshot + Send + Sync + 'static,
    {
        Trial {
            description: description.into(),
            render: Arc::new(render),
        }
    }

    /// What the user did in the trial (for reports).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Executes the trial against a configuration snapshot.
    pub fn run(&self, config: &ConfigState) -> Screenshot {
        (self.render)(config)
    }
}

impl std::fmt::Debug for Trial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Trial({:?})", self.description)
    }
}

/// The user's judgement of a screenshot: does it show the symptom fixed?
///
/// In the real system a human inspects the gallery; in this reproduction
/// each error scenario supplies a predicate over screenshots.
#[derive(Clone)]
pub struct FixOracle {
    is_fixed: Arc<dyn Fn(&Screenshot) -> bool + Send + Sync>,
}

impl FixOracle {
    /// Creates an oracle from a predicate.
    pub fn new<F>(is_fixed: F) -> Self
    where
        F: Fn(&Screenshot) -> bool + Send + Sync + 'static,
    {
        FixOracle {
            is_fixed: Arc::new(is_fixed),
        }
    }

    /// An oracle satisfied when `element` is visible.
    pub fn element_visible(element: impl Into<String>) -> Self {
        let element = element.into();
        FixOracle::new(move |shot| shot.contains(&element))
    }

    /// An oracle satisfied when `element` is *not* visible.
    pub fn element_absent(element: impl Into<String>) -> Self {
        let element = element.into();
        FixOracle::new(move |shot| !shot.contains(&element))
    }

    /// Judges a screenshot.
    pub fn is_fixed(&self, shot: &Screenshot) -> bool {
        (self.is_fixed)(shot)
    }
}

impl std::fmt::Debug for FixOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FixOracle(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocasta_ttkv::{Key, Value};

    #[test]
    fn trial_renders_from_config() {
        let trial = Trial::new("check flag", |config| {
            let mut shot = Screenshot::new();
            shot.add_if(config.get_bool("a/flag").unwrap_or(false), "widget");
            shot
        });
        let empty = ConfigState::new();
        assert!(!trial.run(&empty).contains("widget"));
        let mut on = ConfigState::new();
        on.set(Key::new("a/flag"), Value::from(true));
        assert!(trial.run(&on).contains("widget"));
        assert_eq!(trial.description(), "check flag");
    }

    #[test]
    fn oracle_helpers() {
        let shot: Screenshot = ["menu_bar"].into_iter().collect();
        assert!(FixOracle::element_visible("menu_bar").is_fixed(&shot));
        assert!(!FixOracle::element_visible("toolbar").is_fixed(&shot));
        assert!(FixOracle::element_absent("popup").is_fixed(&shot));
        assert!(!FixOracle::element_absent("menu_bar").is_fixed(&shot));
    }

    #[test]
    fn trial_clone_shares_render() {
        let trial = Trial::new("t", |_| ["x"].into_iter().collect());
        let clone = trial.clone();
        assert_eq!(
            trial.run(&ConfigState::new()),
            clone.run(&ConfigState::new())
        );
    }
}
