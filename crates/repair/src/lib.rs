//! # ocasta-repair — automated configuration-error repair
//!
//! The repair tool of the Ocasta reproduction (*Ocasta: Clustering
//! Configuration Settings for Error Recovery*, Zhen Huang and David Lie,
//! IEEE/IFIP DSN 2014; preprint at
//! [arXiv:1711.04030](https://arxiv.org/abs/1711.04030)) — §III-B and
//! §IV-C of the paper: given a TTKV history, a clustering of the
//! application's settings, a user trial that makes the error's symptom
//! visible, and the user's judgement of screenshots, it searches historical
//! cluster values for a rollback that clears the symptom.
//!
//! * [`ClusterInfo`] — a cluster's version history (co-modification
//!   transactions) and rollback patches;
//! * [`Trial`] / [`FixOracle`] / [`Screenshot`] — the deterministic stand-in
//!   for GUI replay, pixel screenshots and the human in the loop;
//! * [`search`] — the DFS/BFS rollback search with modification-count
//!   cluster sorting, start/end time bounds and screenshot deduplication;
//! * [`parallel_search`] — the same search with concurrent trial executors
//!   and thread-safe screenshot dedup ([`SyncGallery`]), property-tested
//!   equal to [`search`] outcome for outcome;
//! * [`RepairSession`] / [`ClusterCatalog`] — the service tier: repair runs
//!   pinned to a live-stream snapshot (epoch/watermark-stamped catalog plus
//!   a point-in-time history view) so sessions proceed while fleet
//!   ingestion continues;
//! * [`HorizonGuard`] (re-exported from `ocasta-ttkv`) — the retention pin
//!   registry: before snapshotting, a session pins
//!   [`SearchConfig::oldest_history_needed`] so concurrent retention
//!   sweeps never prune versions the search might roll back to
//!   (`DESIGN.md §5.9`);
//! * [`singleton_clusters`] — the `Ocasta-NoClust` baseline (roll back one
//!   setting at a time);
//! * [`simulate_case`] — the Figure 4 user-study model.
//!
//! ```
//! use ocasta_repair::{search, singleton_clusters, FixOracle, SearchConfig, Screenshot, Trial};
//! use ocasta_ttkv::{Key, Timestamp, Ttkv, Value};
//!
//! // History: the toolbar flag broke at t=90.
//! let mut ttkv = Ttkv::new();
//! ttkv.write(Timestamp::from_secs(1), "app/toolbar", Value::from(true));
//! ttkv.write(Timestamp::from_secs(90), "app/toolbar", Value::from(false));
//!
//! let trial = Trial::new("launch", |config| {
//!     let mut shot = Screenshot::new();
//!     shot.add_if(config.get_bool("app/toolbar").unwrap_or(false), "toolbar");
//!     shot
//! });
//! let outcome = search(
//!     &ttkv,
//!     &singleton_clusters(&ttkv),
//!     &trial,
//!     &FixOracle::element_visible("toolbar"),
//!     &SearchConfig::default(),
//! );
//! assert!(outcome.is_fixed());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod history;
mod parallel;
mod screenshot;
mod search;
mod session;
mod trial;
mod user_model;

pub use history::{singleton_clusters, sorted_cluster_infos, ClusterInfo};
pub use parallel::{parallel_search, parallel_search_observed};
pub use screenshot::{Screenshot, ScreenshotGallery, SyncGallery};
pub use search::{search, FixInfo, SearchConfig, SearchOutcome, SearchStrategy};
pub use session::{CatalogHorizon, ClusterCatalog, RepairSession, SessionReport};
pub use trial::{FixOracle, Trial};
pub use user_model::{simulate_case, CaseStudyResult, CaseUserModel, UserStudyParams};

// The retention pin registry lives in the store crate (it is shared with
// the fleet tier's sweeper); sessions are its main client, so re-export it
// here.
pub use ocasta_ttkv::{HorizonGuard, HorizonPin};
