//! The rollback search: DFS/BFS over cluster version histories.

use ocasta_ttkv::{Key, TimeDelta, Timestamp, Ttkv};

use crate::history::{sorted_cluster_infos, ClusterInfo};
use crate::screenshot::ScreenshotGallery;
use crate::trial::{FixOracle, Trial};

/// Order in which `(cluster, version)` pairs are tried (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Exhaust one cluster's versions before moving to the next. Best when
    /// the sort ranks the offending cluster early.
    #[default]
    Dfs,
    /// Try every cluster's latest unexplored version before going one step
    /// deeper anywhere. Less sensitive to sort quality.
    Bfs,
}

impl SearchStrategy {
    /// Human-readable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategy::Dfs => "DFS",
            SearchStrategy::Bfs => "BFS",
        }
    }
}

/// Parameters of one repair search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Trial order.
    pub strategy: SearchStrategy,
    /// Co-modification window used to group cluster versions.
    pub window: TimeDelta,
    /// Earliest transaction considered (the user's "error was introduced
    /// after" bound); `None` searches the whole history.
    pub start_time: Option<Timestamp>,
    /// Latest transaction considered (roughly when the error was first
    /// noticed); `None` searches to the end of history.
    pub end_time: Option<Timestamp>,
    /// Simulated wall-clock cost of one trial execution (sandbox reset +
    /// application launch + UI replay + screenshot). Used for the time
    /// columns of Table IV; per-scenario values are calibrated in
    /// `ocasta-apps` (see each `ErrorScenario::trial_cost`).
    pub trial_cost: TimeDelta,
}

impl SearchConfig {
    /// The oldest timestamp a search with this config can possibly touch —
    /// what a session registers with an [`ocasta_ttkv::HorizonGuard`]
    /// **before** snapshotting a live store, so retention sweeps never
    /// prune versions the search might roll back to.
    ///
    /// An unbounded search (`start_time: None`) needs everything, so it
    /// pins the epoch. A bounded one needs `start_time` itself, one
    /// [`SearchConfig::window`] of slack below it (pruning a mutation just
    /// under the horizon can re-anchor a transaction that straddles it,
    /// shifting version start times within one window), and one more
    /// millisecond for the pre-transaction state a rollback patch reads
    /// ([`crate::ClusterInfo::rollback_patch`]). Searches against a store
    /// pruned at or before this timestamp are equivalent to searches
    /// against the unpruned history — regression-tested in this module.
    pub fn oldest_history_needed(&self) -> Timestamp {
        match self.start_time {
            None => Timestamp::EPOCH,
            Some(start) => start
                .saturating_sub(self.window)
                .saturating_sub(TimeDelta::from_millis(1)),
        }
    }

    /// The inverse of [`SearchConfig::oldest_history_needed`]: the
    /// earliest `start_time` this search may safely use when history below
    /// `pin` may already be pruned fleet-wide (a sweep preceded the pin
    /// registration and the guard clamped it up). An epoch pin constrains
    /// nothing. The two methods are the *only* owners of the
    /// window-plus-millisecond slack, so the pin a driver registers and
    /// the bound it later searches with cannot drift apart.
    pub fn earliest_safe_start(&self, pin: Timestamp) -> Timestamp {
        if pin == Timestamp::EPOCH {
            Timestamp::EPOCH
        } else {
            pin + self.window + TimeDelta::from_millis(1)
        }
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            strategy: SearchStrategy::Dfs,
            window: TimeDelta::from_secs(1),
            start_time: None,
            end_time: None,
            trial_cost: TimeDelta::from_secs(5),
        }
    }
}

/// Where the fix was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixInfo {
    /// Position of the offending cluster in the sorted search order.
    pub cluster_rank: usize,
    /// The offending cluster's keys.
    pub keys: Vec<Key>,
    /// The transaction that was undone to fix the error.
    pub version: Timestamp,
}

/// The result of a repair search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The fix, if any rollback cleared the symptom.
    pub fix: Option<FixInfo>,
    /// Trials executed up to and including the fixing one.
    pub trials_to_fix: Option<usize>,
    /// Trials for an exhaustive search of every version of every cluster.
    pub total_trials: usize,
    /// Unique screenshots recorded up to the fix (what the user examines).
    pub screenshots_to_fix: usize,
    /// Unique screenshots over the exhaustive search.
    pub total_screenshots: usize,
    /// Modeled wall-clock to the fix (`trials_to_fix × trial_cost`).
    pub time_to_fix: Option<TimeDelta>,
    /// Modeled wall-clock for the exhaustive search.
    pub total_time: TimeDelta,
    /// Number of clusters that had at least one searchable version.
    pub clusters_searched: usize,
}

impl SearchOutcome {
    /// `true` if the search repaired the error.
    pub fn is_fixed(&self) -> bool {
        self.fix.is_some()
    }
}

/// Runs the repair search over `clusters` against the recorded history in
/// `ttkv`.
///
/// The search sorts clusters by modification count (ascending — settings
/// that change rarely are likely configuration), walks `(cluster, version)`
/// pairs in the configured strategy order, executes the trial on a sandboxed
/// rollback of each version, and asks the oracle (standing in for the human
/// checking the screenshot gallery) whether the symptom is gone. The search
/// runs to exhaustion so both the "found" and the "searched everything"
/// costs of Table IV are measured.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{search, FixOracle, SearchConfig, Trial};
/// use ocasta_ttkv::{Key, Timestamp, Ttkv, Value};
///
/// let mut ttkv = Ttkv::new();
/// ttkv.write(Timestamp::from_secs(10), "app/visible", Value::from(true));
/// ttkv.write(Timestamp::from_secs(99), "app/visible", Value::from(false)); // the error
///
/// let trial = Trial::new("launch app", |config| {
///     let mut shot = ocasta_repair::Screenshot::new();
///     shot.add_if(config.get_bool("app/visible").unwrap_or(false), "panel");
///     shot
/// });
/// let outcome = search(
///     &ttkv,
///     &[vec![Key::new("app/visible")]],
///     &trial,
///     &FixOracle::element_visible("panel"),
///     &SearchConfig::default(),
/// );
/// assert!(outcome.is_fixed());
/// assert_eq!(outcome.trials_to_fix, Some(1));
/// ```
pub fn search(
    ttkv: &Ttkv,
    clusters: &[Vec<Key>],
    trial: &Trial,
    oracle: &FixOracle,
    config: &SearchConfig,
) -> SearchOutcome {
    let infos = sorted_cluster_infos(
        ttkv,
        clusters,
        config.window,
        config.start_time,
        config.end_time,
    );
    let base = ttkv.snapshot_latest();
    let baseline_shot = trial.run(&base);
    let mut gallery = ScreenshotGallery::with_baseline(baseline_shot);

    let mut fix: Option<FixInfo> = None;
    let mut trials_to_fix = None;
    let mut screenshots_to_fix = 0;
    let mut trials = 0usize;

    for (rank, version) in plan(&infos, config.strategy) {
        let info = &infos[rank];
        trials += 1;
        let sandbox = info.apply_rollback(ttkv, version, &base);
        let shot = trial.run(&sandbox);
        let fixed_now = oracle.is_fixed(&shot);
        gallery.record(shot);
        if fixed_now && fix.is_none() {
            fix = Some(FixInfo {
                cluster_rank: rank,
                keys: info.keys.clone(),
                version,
            });
            trials_to_fix = Some(trials);
            screenshots_to_fix = gallery.len();
        }
    }

    SearchOutcome {
        trials_to_fix,
        total_trials: trials,
        screenshots_to_fix,
        total_screenshots: gallery.len(),
        time_to_fix: trials_to_fix.map(|n| config.trial_cost.scale(n as u64)),
        total_time: config.trial_cost.scale(trials as u64),
        clusters_searched: infos.iter().filter(|i| !i.versions.is_empty()).count(),
        fix,
    }
}

/// The `(cluster rank, version timestamp)` visit order for a strategy.
/// Shared with the parallel search, which executes exactly this order
/// (concurrently within waves, merged back in order).
pub(crate) fn plan(infos: &[ClusterInfo], strategy: SearchStrategy) -> Vec<(usize, Timestamp)> {
    let mut out = Vec::new();
    match strategy {
        SearchStrategy::Dfs => {
            for (rank, info) in infos.iter().enumerate() {
                for &version in &info.versions {
                    out.push((rank, version));
                }
            }
        }
        SearchStrategy::Bfs => {
            let max_depth = infos.iter().map(|i| i.versions.len()).max().unwrap_or(0);
            for depth in 0..max_depth {
                for (rank, info) in infos.iter().enumerate() {
                    if let Some(&version) = info.versions.get(depth) {
                        out.push((rank, version));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::singleton_clusters;
    use crate::screenshot::Screenshot;
    use ocasta_ttkv::Value;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// Two dependent keys: the panel shows iff `enabled` and `mode == "full"`.
    fn dependent_store() -> Ttkv {
        let mut ttkv = Ttkv::new();
        ttkv.write(ts(10), "app/enabled", Value::from(true));
        ttkv.write(ts(10), "app/mode", Value::from("full"));
        // A healthy joint change.
        ttkv.write(ts(1000), "app/enabled", Value::from(true));
        ttkv.write(ts(1000), "app/mode", Value::from("full"));
        // The error: both keys broken together.
        ttkv.write(ts(2000), "app/enabled", Value::from(false));
        ttkv.write(ts(2000), "app/mode", Value::from("compact"));
        // Unrelated churn, modified often (sorts late).
        for i in 0..10 {
            ttkv.write(ts(3000 + i), "app/geometry", Value::from(i as i64));
        }
        ttkv
    }

    fn panel_trial() -> Trial {
        Trial::new("open app", |config| {
            let mut shot = Screenshot::new();
            let on = config.get_bool("app/enabled").unwrap_or(false)
                && config.get_str("app/mode") == Some("full");
            shot.add_if(on, "panel");
            shot.add("window");
            shot
        })
    }

    #[test]
    fn clustered_search_fixes_multi_key_error() {
        let ttkv = dependent_store();
        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
        ];
        let outcome = search(
            &ttkv,
            &clusters,
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
        );
        assert!(outcome.is_fixed());
        let fix = outcome.fix.unwrap();
        assert_eq!(fix.version, ts(2000));
        assert_eq!(fix.keys.len(), 2);
        // The pair cluster has 6 modifications vs geometry's 10, so it is
        // tried first; the fix is its newest version.
        assert_eq!(outcome.trials_to_fix, Some(1));
        assert!(outcome.total_trials >= 3);
        assert_eq!(outcome.time_to_fix, Some(TimeDelta::from_secs(5)));
    }

    #[test]
    fn noclust_cannot_fix_multi_key_error() {
        let ttkv = dependent_store();
        let outcome = search(
            &ttkv,
            &singleton_clusters(&ttkv),
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
        );
        assert!(
            !outcome.is_fixed(),
            "rolling back one key at a time must not clear a two-key error"
        );
        assert!(outcome.total_trials > 0);
    }

    #[test]
    fn noclust_fixes_single_key_error() {
        let mut ttkv = Ttkv::new();
        ttkv.write(ts(1), "app/enabled", Value::from(true));
        ttkv.write(ts(1), "app/mode", Value::from("full"));
        ttkv.write(ts(500), "app/enabled", Value::from(false)); // only one key broke
        let outcome = search(
            &ttkv,
            &singleton_clusters(&ttkv),
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
        );
        assert!(outcome.is_fixed());
    }

    #[test]
    fn bfs_and_dfs_visit_the_same_pairs() {
        let ttkv = dependent_store();
        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
        ];
        let infos = sorted_cluster_infos(&ttkv, &clusters, TimeDelta::from_secs(1), None, None);
        let mut dfs = plan(&infos, SearchStrategy::Dfs);
        let mut bfs = plan(&infos, SearchStrategy::Bfs);
        assert_ne!(dfs, bfs, "orders differ");
        dfs.sort();
        bfs.sort();
        assert_eq!(dfs, bfs, "same visit set");
    }

    #[test]
    fn start_bound_limits_search_depth() {
        let ttkv = dependent_store();
        let clusters = vec![vec![Key::new("app/enabled"), Key::new("app/mode")]];
        let bounded = SearchConfig {
            start_time: Some(ts(1500)),
            ..SearchConfig::default()
        };
        let outcome = search(
            &ttkv,
            &clusters,
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &bounded,
        );
        // Only the t=2000 (error) transaction is in range.
        assert_eq!(outcome.total_trials, 1);
        assert!(outcome.is_fixed());
    }

    #[test]
    fn screenshots_are_deduplicated() {
        let ttkv = dependent_store();
        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
        ];
        let outcome = search(
            &ttkv,
            &clusters,
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
        );
        // Geometry rollbacks all render identically to the erroneous
        // baseline, so the gallery holds just the fixed shot.
        assert_eq!(outcome.total_screenshots, 1);
        assert_eq!(outcome.screenshots_to_fix, 1);
    }

    #[test]
    fn oldest_history_needed_bounds() {
        let unbounded = SearchConfig::default();
        assert_eq!(unbounded.oldest_history_needed(), Timestamp::EPOCH);
        let bounded = SearchConfig {
            start_time: Some(ts(1500)),
            window: TimeDelta::from_secs(1),
            ..SearchConfig::default()
        };
        assert_eq!(
            bounded.oldest_history_needed(),
            Timestamp::from_millis(1_498_999),
        );
        // A bound tighter than the window pins the epoch, not underflow.
        let tight = SearchConfig {
            start_time: Some(Timestamp::from_millis(500)),
            ..SearchConfig::default()
        };
        assert_eq!(tight.oldest_history_needed(), Timestamp::EPOCH);
        // earliest_safe_start inverts oldest_history_needed exactly.
        assert_eq!(
            bounded.earliest_safe_start(bounded.oldest_history_needed()),
            ts(1500),
        );
        assert_eq!(
            bounded.earliest_safe_start(Timestamp::EPOCH),
            Timestamp::EPOCH
        );
    }

    #[test]
    fn search_over_a_pinned_prune_equals_search_over_full_history() {
        // The §5.9 contract, at search level: pruning at or before
        // `oldest_history_needed()` must not change a bounded search's
        // outcome — field for field, including tombstone-at-horizon and
        // version-exactly-at-horizon records.
        let mut ttkv = dependent_store();
        ttkv.write(ts(1400), "app/phantom", Value::from("old"));
        ttkv.delete(ts(1450), "app/phantom"); // dead at the horizon
        let config = SearchConfig {
            start_time: Some(ts(1500)),
            ..SearchConfig::default()
        };
        let horizon = config.oldest_history_needed();
        // A mutation exactly at the horizon stays searchable context.
        ttkv.write(horizon, "app/geometry", Value::from(-1));

        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
            vec![Key::new("app/phantom")],
        ];
        let trial = panel_trial();
        let oracle = FixOracle::element_visible("panel");
        let full = search(&ttkv, &clusters, &trial, &oracle, &config);

        let mut pruned = ttkv.clone();
        let stats = pruned.prune_before(horizon);
        assert!(stats.pruned_versions > 0, "the prune must bite");
        let after_prune = search(&pruned, &clusters, &trial, &oracle, &config);
        assert_eq!(full, after_prune);
        assert!(full.is_fixed());
    }

    #[test]
    fn unfixable_when_history_lacks_a_good_state() {
        let mut ttkv = Ttkv::new();
        // The app was always broken: no historical value shows the panel.
        ttkv.write(ts(1), "app/enabled", Value::from(false));
        ttkv.write(ts(100), "app/enabled", Value::from(false));
        let outcome = search(
            &ttkv,
            &singleton_clusters(&ttkv),
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
        );
        assert!(!outcome.is_fixed());
        assert_eq!(outcome.trials_to_fix, None);
        assert_eq!(outcome.time_to_fix, None);
    }
}
