//! The parallel rollback search: the sequential search's trials, executed
//! concurrently, with the sequential search's answers — exactly.
//!
//! A repair trial is the expensive step of the loop (§III-B: sandbox reset,
//! application launch, UI replay, screenshot — modeled here as rollback
//! materialisation plus a render). Trials at nearby positions in the visit
//! plan are independent: each one rolls back a candidate version onto the
//! *same* erroneous base state and renders. [`parallel_search`] exploits
//! that by cutting the sequential plan into waves of `threads` candidates,
//! running each wave's trials on scoped threads, and then folding the
//! wave's results back **in plan order** into the shared thread-safe
//! gallery ([`SyncGallery`]). Because every counter the search reports —
//! first fix, trials-to-fix, unique screenshots at the fix — is updated
//! during the in-order fold, the outcome equals [`search`]'s field for
//! field, which the property suite asserts on random histories
//! (`tests/prop.rs`) and `DESIGN.md §5.8` argues structurally.
//!
//! [`search`]: crate::search::search

use ocasta_ttkv::{ConfigState, Key, Timestamp, Ttkv};

use crate::history::{sorted_cluster_infos, ClusterInfo};
use crate::screenshot::{Screenshot, SyncGallery};
use crate::search::{plan, FixInfo, SearchConfig, SearchOutcome};
use crate::trial::{FixOracle, Trial};

/// Runs the repair search with up to `threads` concurrent trial executors.
///
/// Semantics are identical to [`search`](crate::search::search) — same
/// visit order, same fix, same trial and screenshot counts — only the
/// wall-clock of executing the trials changes. `threads == 1` degenerates
/// to the sequential loop with no thread spawns at all.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{parallel_search, search, singleton_clusters};
/// use ocasta_repair::{FixOracle, Screenshot, SearchConfig, Trial};
/// use ocasta_ttkv::{Timestamp, Ttkv, Value};
///
/// let mut ttkv = Ttkv::new();
/// ttkv.write(Timestamp::from_secs(1), "app/toolbar", Value::from(true));
/// ttkv.write(Timestamp::from_secs(90), "app/toolbar", Value::from(false));
/// let trial = Trial::new("launch", |config| {
///     let mut shot = Screenshot::new();
///     shot.add_if(config.get_bool("app/toolbar").unwrap_or(false), "toolbar");
///     shot
/// });
/// let clusters = singleton_clusters(&ttkv);
/// let oracle = FixOracle::element_visible("toolbar");
/// let config = SearchConfig::default();
/// let parallel = parallel_search(&ttkv, &clusters, &trial, &oracle, &config, 4);
/// assert_eq!(parallel, search(&ttkv, &clusters, &trial, &oracle, &config));
/// ```
pub fn parallel_search(
    ttkv: &Ttkv,
    clusters: &[Vec<Key>],
    trial: &Trial,
    oracle: &FixOracle,
    config: &SearchConfig,
    threads: usize,
) -> SearchOutcome {
    parallel_search_observed(ttkv, clusters, trial, oracle, config, threads, |_| {})
}

/// [`parallel_search`] with a progress observer: after each wave of trials
/// completes, `on_progress` receives the oldest history timestamp the
/// **remaining** plan can still touch (via
/// [`SearchConfig::oldest_history_needed`] applied to the oldest surviving
/// candidate version — the single owner of the window-plus-millisecond
/// slack).
///
/// The reported bound is monotone non-decreasing across waves: the plan
/// only shrinks, so its oldest remaining candidate only moves forward. A
/// repair driver holding an [`ocasta_ttkv::HorizonPin`] can therefore feed
/// each report straight into [`ocasta_ttkv::HorizonPin::advance`], letting
/// retention follow the search instead of stalling at the session's
/// starting window for its whole life (the pin-starvation fix,
/// `DESIGN.md §5.9`). The observer runs on the coordinating thread, between
/// waves; it does not perturb the search — outcomes equal
/// [`parallel_search`]'s (and therefore the sequential search's) field for
/// field.
///
/// When the final wave completes, the observer is *not* called with an
/// "everything prunable" bound: releasing the last of the protection is the
/// pin drop's job, and the driver may still read the pinned snapshot while
/// assembling its report.
pub fn parallel_search_observed(
    ttkv: &Ttkv,
    clusters: &[Vec<Key>],
    trial: &Trial,
    oracle: &FixOracle,
    config: &SearchConfig,
    threads: usize,
    mut on_progress: impl FnMut(Timestamp),
) -> SearchOutcome {
    let threads = threads.max(1);
    let infos = sorted_cluster_infos(
        ttkv,
        clusters,
        config.window,
        config.start_time,
        config.end_time,
    );
    let base = ttkv.snapshot_latest();
    let baseline_shot = trial.run(&base);
    let gallery = SyncGallery::with_baseline(baseline_shot);

    let visits = plan(&infos, config.strategy);
    // Suffix minima over candidate version timestamps: `oldest_after[i]` is
    // the oldest version any trial from position `i` onward can roll back
    // to — what the remaining plan still needs from history.
    let mut oldest_after: Vec<Option<Timestamp>> = vec![None; visits.len() + 1];
    for i in (0..visits.len()).rev() {
        let version = visits[i].1;
        oldest_after[i] = Some(oldest_after[i + 1].map_or(version, |m| version.min(m)));
    }
    let mut fix: Option<FixInfo> = None;
    let mut trials_to_fix = None;
    let mut screenshots_to_fix = 0;
    let mut trials = 0usize;

    for wave in visits.chunks(threads) {
        // Execute the wave's trials concurrently: the coordinator takes the
        // first candidate itself, scoped threads take the rest (so a wave
        // of one — and therefore threads == 1 — spawns nothing).
        let results: Vec<(Screenshot, bool)> = if wave.len() == 1 {
            let (rank, version) = wave[0];
            vec![run_trial(ttkv, &infos[rank], version, &base, trial, oracle)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = wave[1..]
                    .iter()
                    .map(|&(rank, version)| {
                        let info = &infos[rank];
                        let base = &base;
                        scope.spawn(move || run_trial(ttkv, info, version, base, trial, oracle))
                    })
                    .collect();
                let first = run_trial(ttkv, &infos[wave[0].0], wave[0].1, &base, trial, oracle);
                std::iter::once(first)
                    .chain(
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("trial executor panicked")),
                    )
                    .collect()
            })
        };
        // Fold the wave back in plan order: this is what keeps the fix
        // choice and every counter bit-identical to the sequential search.
        for (offset, (shot, fixed_now)) in results.into_iter().enumerate() {
            trials += 1;
            gallery.record(shot);
            if fixed_now && fix.is_none() {
                let (rank, version) = wave[offset];
                fix = Some(FixInfo {
                    cluster_rank: rank,
                    keys: infos[rank].keys.clone(),
                    version,
                });
                trials_to_fix = Some(trials);
                screenshots_to_fix = gallery.len();
            }
        }
        // The wave's trials are folded: everything the *remaining* plan
        // can touch starts at the suffix minimum past this wave.
        if let Some(oldest) = oldest_after[trials] {
            let remaining = SearchConfig {
                start_time: Some(oldest),
                ..config.clone()
            };
            on_progress(remaining.oldest_history_needed());
        }
    }

    SearchOutcome {
        trials_to_fix,
        total_trials: trials,
        screenshots_to_fix,
        total_screenshots: gallery.len(),
        time_to_fix: trials_to_fix.map(|n| config.trial_cost.scale(n as u64)),
        total_time: config.trial_cost.scale(trials as u64),
        clusters_searched: infos.iter().filter(|i| !i.versions.is_empty()).count(),
        fix,
    }
}

/// One trial: materialise the rollback sandbox, render, judge.
fn run_trial(
    ttkv: &Ttkv,
    info: &ClusterInfo,
    version: Timestamp,
    base: &ConfigState,
    trial: &Trial,
    oracle: &FixOracle,
) -> (Screenshot, bool) {
    let sandbox = info.apply_rollback(ttkv, version, base);
    let shot = trial.run(&sandbox);
    let fixed = oracle.is_fixed(&shot);
    (shot, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::singleton_clusters;
    use crate::search::{search, SearchStrategy};
    use ocasta_ttkv::Value;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    /// The two-key dependent store from the sequential search's tests.
    fn dependent_store() -> Ttkv {
        let mut ttkv = Ttkv::new();
        ttkv.write(ts(10), "app/enabled", Value::from(true));
        ttkv.write(ts(10), "app/mode", Value::from("full"));
        ttkv.write(ts(1000), "app/enabled", Value::from(true));
        ttkv.write(ts(1000), "app/mode", Value::from("full"));
        ttkv.write(ts(2000), "app/enabled", Value::from(false));
        ttkv.write(ts(2000), "app/mode", Value::from("compact"));
        for i in 0..10 {
            ttkv.write(ts(3000 + i), "app/geometry", Value::from(i as i64));
        }
        ttkv
    }

    fn panel_trial() -> Trial {
        Trial::new("open app", |config| {
            let mut shot = Screenshot::new();
            let on = config.get_bool("app/enabled").unwrap_or(false)
                && config.get_str("app/mode") == Some("full");
            shot.add_if(on, "panel");
            shot.add("window");
            shot
        })
    }

    #[test]
    fn every_thread_count_matches_sequential() {
        let ttkv = dependent_store();
        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
        ];
        let oracle = FixOracle::element_visible("panel");
        for strategy in [SearchStrategy::Dfs, SearchStrategy::Bfs] {
            let config = SearchConfig {
                strategy,
                ..SearchConfig::default()
            };
            let sequential = search(&ttkv, &clusters, &panel_trial(), &oracle, &config);
            for threads in [1, 2, 3, 8, 64] {
                let parallel =
                    parallel_search(&ttkv, &clusters, &panel_trial(), &oracle, &config, threads);
                assert_eq!(parallel, sequential, "threads={threads} {strategy:?}");
            }
            assert!(sequential.is_fixed());
        }
    }

    #[test]
    fn progress_observer_reports_monotone_bounds_without_perturbing_outcome() {
        let ttkv = dependent_store();
        let clusters = vec![
            vec![Key::new("app/enabled"), Key::new("app/mode")],
            vec![Key::new("app/geometry")],
        ];
        let oracle = FixOracle::element_visible("panel");
        let config = SearchConfig::default();
        for threads in [1, 2, 4] {
            let mut reports: Vec<Timestamp> = Vec::new();
            let observed = parallel_search_observed(
                &ttkv,
                &clusters,
                &panel_trial(),
                &oracle,
                &config,
                threads,
                |t| reports.push(t),
            );
            let plain =
                parallel_search(&ttkv, &clusters, &panel_trial(), &oracle, &config, threads);
            assert_eq!(observed, plain, "threads={threads}");
            if threads < observed.total_trials {
                assert!(!reports.is_empty(), "waves reported progress");
            } else {
                // The whole plan fit in one wave, and the final wave never
                // reports: releasing protection is the pin drop's job.
                assert!(reports.is_empty(), "threads={threads}: {reports:?}");
            }
            assert!(
                reports.windows(2).all(|w| w[0] <= w[1]),
                "bounds are monotone: {reports:?}"
            );
            // Every report is a bound the remaining plan honours: it never
            // exceeds what the whole search needed at the start plus the
            // full span of candidate versions.
            let initial = config.oldest_history_needed();
            assert!(reports.iter().all(|&t| t >= initial));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let ttkv = dependent_store();
        let clusters = singleton_clusters(&ttkv);
        let oracle = FixOracle::element_visible("panel");
        let config = SearchConfig::default();
        let outcome = parallel_search(&ttkv, &clusters, &panel_trial(), &oracle, &config, 0);
        assert_eq!(
            outcome,
            search(&ttkv, &clusters, &panel_trial(), &oracle, &config)
        );
    }

    #[test]
    fn empty_history_yields_empty_outcome() {
        let ttkv = Ttkv::new();
        let outcome = parallel_search(
            &ttkv,
            &[],
            &panel_trial(),
            &FixOracle::element_visible("panel"),
            &SearchConfig::default(),
            4,
        );
        assert!(!outcome.is_fixed());
        assert_eq!(outcome.total_trials, 0);
        assert_eq!(outcome.clusters_searched, 0);
    }
}
