//! The user-study model (Figure 4).
//!
//! The paper ran 19 human participants through four configuration errors,
//! measuring (a) the time to create an Ocasta trial plus select the fixed
//! screenshot and (b) the time to fix the same error manually, cut off at
//! 5 minutes. This module reproduces that comparison with a parameterised
//! population model; the parameters per case are documented alongside the
//! Figure 4 bench (`ocasta-bench --bin fig4`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Population parameters of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserStudyParams {
    /// Number of simulated participants (the paper had 19).
    pub participants: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for UserStudyParams {
    fn default() -> Self {
        UserStudyParams {
            participants: 19,
            seed: 4,
        }
    }
}

/// Per-error user-behaviour model.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseUserModel {
    /// Which Table III error this models (11, 13, 15 or 16 in the study).
    pub error_id: usize,
    /// Mean seconds to create the trial (record the reproducing actions).
    pub trial_creation_mean_s: f64,
    /// Standard deviation of trial-creation time.
    pub trial_creation_sd_s: f64,
    /// Seconds spent examining each unique screenshot.
    pub per_screenshot_s: f64,
    /// Unique screenshots Ocasta produced for this error (Table IV).
    pub screenshots: usize,
    /// Fraction of participants able to fix the error manually within the
    /// cutoff.
    pub manual_success_prob: f64,
    /// Mean seconds of a *successful* manual fix.
    pub manual_time_mean_s: f64,
    /// Standard deviation of successful manual-fix time.
    pub manual_time_sd_s: f64,
    /// Manual-attempt cutoff (the paper used 300 s).
    pub cutoff_s: f64,
}

/// One case's simulated outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudyResult {
    /// Which error.
    pub error_id: usize,
    /// Per-participant Ocasta times (trial creation + screenshot selection).
    pub ocasta_times_s: Vec<f64>,
    /// Per-participant manual times (cutoff-censored for failures).
    pub manual_times_s: Vec<f64>,
    /// Fraction of participants who fixed the error manually in time.
    pub manual_success_rate: f64,
}

impl CaseStudyResult {
    /// Mean Ocasta time.
    pub fn ocasta_mean_s(&self) -> f64 {
        mean(&self.ocasta_times_s)
    }

    /// Mean manual time (failures contribute the cutoff, a lower bound, as
    /// in the paper).
    pub fn manual_mean_s(&self) -> f64 {
        mean(&self.manual_times_s)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Simulates one error case over the participant population.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{simulate_case, CaseUserModel, UserStudyParams};
///
/// let model = CaseUserModel {
///     error_id: 15,
///     trial_creation_mean_s: 45.0,
///     trial_creation_sd_s: 12.0,
///     per_screenshot_s: 8.0,
///     screenshots: 2,
///     manual_success_prob: 0.2,
///     manual_time_mean_s: 240.0,
///     manual_time_sd_s: 50.0,
///     cutoff_s: 300.0,
/// };
/// let result = simulate_case(&model, &UserStudyParams::default());
/// assert_eq!(result.ocasta_times_s.len(), 19);
/// assert!(result.ocasta_mean_s() < result.manual_mean_s());
/// ```
pub fn simulate_case(model: &CaseUserModel, params: &UserStudyParams) -> CaseStudyResult {
    let mut rng = StdRng::seed_from_u64(params.seed ^ (model.error_id as u64).wrapping_mul(0x9E37));
    let mut ocasta = Vec::with_capacity(params.participants);
    let mut manual = Vec::with_capacity(params.participants);
    let mut successes = 0usize;
    for _ in 0..params.participants {
        let creation = normal(
            &mut rng,
            model.trial_creation_mean_s,
            model.trial_creation_sd_s,
        )
        .max(5.0);
        let selection = (0..model.screenshots.max(1))
            .map(|_| {
                normal(
                    &mut rng,
                    model.per_screenshot_s,
                    model.per_screenshot_s * 0.3,
                )
                .max(1.0)
            })
            .sum::<f64>();
        ocasta.push(creation + selection);

        if rng.random_bool(model.manual_success_prob.clamp(0.0, 1.0)) {
            successes += 1;
            let t = normal(&mut rng, model.manual_time_mean_s, model.manual_time_sd_s)
                .clamp(10.0, model.cutoff_s);
            manual.push(t);
        } else {
            // Cut off: the recorded time is a lower bound (§VI-D).
            manual.push(model.cutoff_s);
        }
    }
    CaseStudyResult {
        error_id: model.error_id,
        ocasta_times_s: ocasta,
        manual_times_s: manual,
        manual_success_rate: successes as f64 / params.participants.max(1) as f64,
    }
}

/// A normal sample via Box–Muller.
fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sd * z
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CaseUserModel {
        CaseUserModel {
            error_id: 13,
            trial_creation_mean_s: 40.0,
            trial_creation_sd_s: 10.0,
            per_screenshot_s: 8.0,
            screenshots: 2,
            manual_success_prob: 0.3,
            manual_time_mean_s: 250.0,
            manual_time_sd_s: 40.0,
            cutoff_s: 300.0,
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let params = UserStudyParams::default();
        let a = simulate_case(&model(), &params);
        let b = simulate_case(&model(), &params);
        assert_eq!(a, b);
        let c = simulate_case(&model(), &UserStudyParams { seed: 9, ..params });
        assert_ne!(a.ocasta_times_s, c.ocasta_times_s);
    }

    #[test]
    fn manual_times_respect_cutoff() {
        let result = simulate_case(&model(), &UserStudyParams::default());
        assert!(result.manual_times_s.iter().all(|&t| t <= 300.0));
        assert!(result.manual_times_s.iter().all(|&t| t >= 10.0));
    }

    #[test]
    fn ocasta_beats_manual_for_hard_errors() {
        let hard = CaseUserModel {
            manual_success_prob: 0.05,
            ..model()
        };
        let result = simulate_case(
            &hard,
            &UserStudyParams {
                participants: 200,
                seed: 1,
            },
        );
        assert!(result.ocasta_mean_s() < result.manual_mean_s() * 0.5);
        assert!(result.manual_success_rate < 0.15);
    }

    #[test]
    fn easy_manual_fixes_narrow_the_gap() {
        let easy = CaseUserModel {
            manual_success_prob: 0.9,
            manual_time_mean_s: 60.0,
            manual_time_sd_s: 20.0,
            ..model()
        };
        let hard = CaseUserModel {
            manual_success_prob: 0.05,
            ..model()
        };
        let params = UserStudyParams {
            participants: 500,
            seed: 2,
        };
        let easy_result = simulate_case(&easy, &params);
        let hard_result = simulate_case(&hard, &params);
        assert!(easy_result.manual_mean_s() < hard_result.manual_mean_s());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let r = CaseStudyResult {
            error_id: 0,
            ocasta_times_s: vec![],
            manual_times_s: vec![],
            manual_success_rate: 0.0,
        };
        assert_eq!(r.ocasta_mean_s(), 0.0);
        assert_eq!(r.manual_mean_s(), 0.0);
    }
}
