//! Repair sessions: the service-tier unit of repair work.
//!
//! The paper's repair tool runs on one user's machine over one recorded
//! history. At fleet scale the history lives in a continuously-ingesting
//! sharded store and the cluster catalog is served by the streaming
//! clustering tier, so a repair run must *pin* its inputs: a
//! [`RepairSession`] owns a point-in-time history snapshot plus a
//! [`ClusterCatalog`] stamped with the stream horizon it was taken from
//! ([`CatalogHorizon`]), and searches those while ingestion continues
//! elsewhere. The facade crate (`ocasta`) builds sessions from live
//! `ShardedTtkv` snapshots and `OcastaStream` clusterings; this module
//! keeps the session machinery store-agnostic (see `DESIGN.md §5.8`).

use std::time::Duration;

use ocasta_obs::Stopwatch;
use ocasta_ttkv::{Key, Ttkv};

use crate::search::{SearchConfig, SearchOutcome};
use crate::trial::{FixOracle, Trial};

/// The stream horizon a cluster catalog was pinned from: which prefix of
/// the live event stream the clusters describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CatalogHorizon {
    /// Absorption epoch of the stream at pin time.
    pub epoch: u64,
    /// Mutation events the clustering had absorbed at pin time.
    pub events: u64,
    /// Sealed time at pin time (milliseconds; 0 if nothing was sealed).
    pub watermark_ms: u64,
}

/// A pinned cluster catalog: the partition of settings a repair session
/// searches, stamped with the stream horizon it reflects.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{CatalogHorizon, ClusterCatalog};
/// use ocasta_ttkv::Key;
///
/// let mut catalog = ClusterCatalog::new(
///     vec![vec![Key::new("app/a"), Key::new("app/b")]],
///     CatalogHorizon { epoch: 3, events: 128, watermark_ms: 90_000 },
/// );
/// assert!(catalog.covers(&Key::new("app/a")));
/// // A key the stream has not clustered yet falls back to a singleton.
/// assert!(catalog.ensure_singleton(&Key::new("app/new")));
/// assert!(!catalog.ensure_singleton(&Key::new("app/new")), "idempotent");
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterCatalog {
    clusters: Vec<Vec<Key>>,
    horizon: CatalogHorizon,
}

impl ClusterCatalog {
    /// Creates a catalog from a clustering and the horizon it was pinned at.
    pub fn new(clusters: Vec<Vec<Key>>, horizon: CatalogHorizon) -> Self {
        ClusterCatalog { clusters, horizon }
    }

    /// A catalog from a batch (non-streaming) clustering: no stream ran, so
    /// the horizon stamp is all zeros.
    pub fn from_batch(clusters: Vec<Vec<Key>>) -> Self {
        ClusterCatalog::new(clusters, CatalogHorizon::default())
    }

    /// The clusters the session will search.
    pub fn clusters(&self) -> &[Vec<Key>] {
        &self.clusters
    }

    /// The stream horizon the catalog was pinned from.
    pub fn horizon(&self) -> CatalogHorizon {
        self.horizon
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` if the catalog has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// `true` if some cluster contains `key`.
    pub fn covers(&self, key: &Key) -> bool {
        self.clusters.iter().any(|c| c.contains(key))
    }

    /// Guarantees `key` is searchable: if no cluster covers it, appends a
    /// singleton cluster (the NoClust fallback for keys the stream had not
    /// observed when the catalog was pinned — e.g. a setting first touched
    /// by the error itself). Returns `true` if a cluster was added.
    pub fn ensure_singleton(&mut self, key: &Key) -> bool {
        if self.covers(key) {
            return false;
        }
        self.clusters.push(vec![key.clone()]);
        true
    }
}

/// One user's repair run against pinned fleet state.
///
/// A session owns its inputs — the history snapshot and the stamped
/// catalog — so any number of sessions run concurrently against one fleet
/// store without synchronising with ingestion or with each other.
///
/// # Examples
///
/// ```
/// use ocasta_repair::{ClusterCatalog, FixOracle, RepairSession};
/// use ocasta_repair::{Screenshot, SearchConfig, Trial};
/// use ocasta_ttkv::{Key, Timestamp, Ttkv, Value};
///
/// let mut history = Ttkv::new();
/// history.write(Timestamp::from_secs(1), "app/toolbar", Value::from(true));
/// history.write(Timestamp::from_secs(90), "app/toolbar", Value::from(false));
///
/// let catalog = ClusterCatalog::from_batch(vec![vec![Key::new("app/toolbar")]]);
/// let session = RepairSession::new("alice", history, catalog, SearchConfig::default())
///     .with_threads(2);
/// let trial = Trial::new("launch", |config| {
///     let mut shot = Screenshot::new();
///     shot.add_if(config.get_bool("app/toolbar").unwrap_or(false), "toolbar");
///     shot
/// });
/// let report = session.run(&trial, &FixOracle::element_visible("toolbar"));
/// assert!(report.outcome.is_fixed());
/// assert_eq!(report.user, "alice");
/// ```
#[derive(Debug, Clone)]
pub struct RepairSession {
    user: String,
    store: Ttkv,
    catalog: ClusterCatalog,
    config: SearchConfig,
    threads: usize,
}

impl RepairSession {
    /// Creates a session over a pinned history snapshot and catalog.
    pub fn new(
        user: impl Into<String>,
        store: Ttkv,
        catalog: ClusterCatalog,
        config: SearchConfig,
    ) -> Self {
        RepairSession {
            user: user.into(),
            store,
            catalog,
            config,
            threads: 1,
        }
    }

    /// Sets the number of concurrent trial executors (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The user this session repairs for.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The pinned history snapshot the session searches.
    pub fn store(&self) -> &Ttkv {
        &self.store
    }

    /// The pinned cluster catalog.
    pub fn catalog(&self) -> &ClusterCatalog {
        &self.catalog
    }

    /// Concurrent trial executors the session will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the rollback search to exhaustion and reports the outcome.
    pub fn run(&self, trial: &Trial, oracle: &FixOracle) -> SessionReport {
        self.run_observed(trial, oracle, |_| {})
    }

    /// Like [`RepairSession::run`], with a progress observer: after each
    /// wave of trials, `on_progress` receives the oldest history timestamp
    /// the remaining plan still needs (see
    /// [`parallel_search_observed`](crate::parallel_search_observed)).
    /// A service driver holding a retention pin feeds these reports into
    /// [`ocasta_ttkv::HorizonPin::advance`] so a long session stops
    /// starving fleet-wide retention as its candidate window shrinks.
    pub fn run_observed(
        &self,
        trial: &Trial,
        oracle: &FixOracle,
        on_progress: impl FnMut(ocasta_ttkv::Timestamp),
    ) -> SessionReport {
        let started = Stopwatch::start();
        let outcome = crate::parallel::parallel_search_observed(
            &self.store,
            self.catalog.clusters(),
            trial,
            oracle,
            &self.config,
            self.threads,
            on_progress,
        );
        SessionReport {
            user: self.user.clone(),
            outcome,
            horizon: self.catalog.horizon(),
            threads: self.threads,
            wall: started.elapsed(),
        }
    }
}

/// What one repair session did.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The session's user.
    pub user: String,
    /// The search result (fix, trial counts, screenshot counts, modeled
    /// times).
    pub outcome: SearchOutcome,
    /// The stream horizon the session's catalog was pinned from.
    pub horizon: CatalogHorizon,
    /// Concurrent trial executors used.
    pub threads: usize,
    /// Measured wall-clock of the search (the *compute* cost; the modeled
    /// user-facing cost is `outcome.total_time`).
    pub wall: Duration,
}

impl SessionReport {
    /// `true` if the session repaired the error.
    pub fn is_fixed(&self) -> bool {
        self.outcome.is_fixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screenshot::Screenshot;
    use ocasta_ttkv::{Timestamp, Value};

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn toolbar_trial() -> Trial {
        Trial::new("launch", |config| {
            let mut shot = Screenshot::new();
            shot.add_if(config.get_bool("app/toolbar").unwrap_or(true), "toolbar");
            shot
        })
    }

    #[test]
    fn session_owns_pinned_inputs_and_fixes() {
        let mut store = Ttkv::new();
        store.write(ts(5), "app/toolbar", Value::from(true));
        store.write(ts(900), "app/toolbar", Value::from(false));
        let catalog = ClusterCatalog::new(
            vec![vec![Key::new("app/toolbar")]],
            CatalogHorizon {
                epoch: 7,
                events: 2,
                watermark_ms: 900_000,
            },
        );
        let session = RepairSession::new("u0", store, catalog, SearchConfig::default());
        assert_eq!(session.user(), "u0");
        assert_eq!(session.threads(), 1);
        assert_eq!(session.catalog().horizon().epoch, 7);
        let report = session.run(&toolbar_trial(), &FixOracle::element_visible("toolbar"));
        assert!(report.is_fixed());
        assert_eq!(report.horizon.epoch, 7);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn concurrent_sessions_share_nothing() {
        let mut store = Ttkv::new();
        store.write(ts(5), "app/toolbar", Value::from(true));
        store.write(ts(900), "app/toolbar", Value::from(false));
        let catalog = ClusterCatalog::from_batch(vec![vec![Key::new("app/toolbar")]]);
        let reports: Vec<SessionReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|u| {
                    let store = store.clone();
                    let catalog = catalog.clone();
                    scope.spawn(move || {
                        let session = RepairSession::new(
                            format!("u{u}"),
                            store,
                            catalog,
                            SearchConfig::default(),
                        )
                        .with_threads(2);
                        session.run(&toolbar_trial(), &FixOracle::element_visible("toolbar"))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("session panicked"))
                .collect()
        });
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(SessionReport::is_fixed));
        // Sessions over identical pinned inputs report identical outcomes.
        assert!(reports.windows(2).all(|w| w[0].outcome == w[1].outcome));
    }

    #[test]
    fn long_session_advances_its_retention_pin_as_the_plan_shrinks() {
        use ocasta_ttkv::HorizonGuard;

        // Regression for retention-pin starvation: a session used to hold
        // its registration-time pin unchanged for its whole life, so one
        // long search froze fleet-wide retention at the session's
        // *starting* window even after every old candidate had been tried.
        // The search now reports, wave by wave, the oldest history its
        // remaining plan needs, and the driver advances the pin.
        let base = 100_000u64;
        let mut store = Ttkv::new();
        // The cluster searched first (fewest modifications) holds the
        // oldest versions; once its trials are spent, nothing left in the
        // plan needs them.
        store.write(ts(base), "app/old", Value::from(1));
        store.write(ts(base + 100), "app/old", Value::from(2));
        // The cluster searched second only needs much newer history.
        store.write(ts(base + 5_000), "app/new", Value::from(1));
        store.write(ts(base + 5_100), "app/new", Value::from(2));
        store.write(ts(base + 5_200), "app/new", Value::from(3));
        let catalog =
            ClusterCatalog::from_batch(vec![vec![Key::new("app/old")], vec![Key::new("app/new")]]);
        let config = SearchConfig {
            start_time: Some(ts(base)),
            ..SearchConfig::default()
        };
        let guard = HorizonGuard::new();
        let mut pin = guard.pin(config.oldest_history_needed());
        let registered = pin.timestamp();

        let session = RepairSession::new("marathon", store, catalog, config);
        // The oracle never accepts, so the session tries every candidate —
        // the long-session worst case.
        let report = session.run_observed(
            &Trial::new("launch", |_| Screenshot::new()),
            &FixOracle::element_visible("never-appears"),
            |needed| pin.advance(needed),
        );
        assert!(!report.is_fixed());
        assert_eq!(report.outcome.total_trials, 5);

        // While the session still holds its pin, retention is already
        // unblocked past the starting window: the spent old candidates are
        // prunable, the unsearched tail is not.
        assert!(
            pin.timestamp() > registered,
            "pin advanced past registration: {} vs {registered}",
            pin.timestamp()
        );
        let target = ts(base + 100_000);
        assert_eq!(guard.clamp(target), pin.timestamp());
        drop(pin);
        assert_eq!(guard.clamp(target), target, "released on drop");
    }

    #[test]
    fn catalog_singleton_fallback_is_idempotent() {
        let mut catalog = ClusterCatalog::from_batch(vec![vec![Key::new("a")]]);
        assert!(!catalog.ensure_singleton(&Key::new("a")));
        assert!(catalog.ensure_singleton(&Key::new("b")));
        assert!(!catalog.ensure_singleton(&Key::new("b")));
        assert_eq!(catalog.len(), 2);
        assert!(!catalog.is_empty());
    }
}
