//! Property-based tests for the repair search.

use proptest::prelude::*;

use ocasta_repair::{
    parallel_search, search, singleton_clusters, sorted_cluster_infos, FixOracle, Screenshot,
    SearchConfig, SearchStrategy, Trial,
};
use ocasta_ttkv::{Key, TimeDelta, Timestamp, Ttkv, Value};

/// A random history over a small key space: each entry is (key, time s,
/// value).
fn history() -> impl Strategy<Value = Vec<(u8, u64, i64)>> {
    prop::collection::vec((0u8..6, 0u64..50_000, 0i64..100), 1..60)
}

fn build_store(entries: &[(u8, u64, i64)]) -> Ttkv {
    let mut ttkv = Ttkv::new();
    for &(k, t, v) in entries {
        ttkv.write(
            Timestamp::from_secs(t),
            Key::new(format!("app/k{k}")),
            Value::from(v),
        );
    }
    ttkv
}

/// A trial that exposes key k0's value on screen.
fn k0_trial() -> Trial {
    Trial::new("probe", |config| {
        let mut shot = Screenshot::new();
        if let Some(v) = config.get_int("app/k0") {
            shot.add(format!("k0:{v}"));
        }
        shot
    })
}

/// A random partition of the 6-key space into clusters: `assignment[k]` is
/// key k's cluster. Produces multi-key clusters as well as singletons.
fn clustering() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..3, 6)
}

fn build_clusters(assignment: &[u8]) -> Vec<Vec<Key>> {
    let groups = 1 + usize::from(*assignment.iter().max().unwrap_or(&0));
    let mut clusters = vec![Vec::new(); groups];
    for (k, &group) in assignment.iter().enumerate() {
        clusters[group as usize].push(Key::new(format!("app/k{k}")));
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

proptest! {
    /// The tentpole invariant: the parallel rollback search returns the
    /// same outcome as the sequential search — same fix, same trial count,
    /// same screenshot counts (to the fix and total), same modeled times —
    /// on any history, any clustering, either strategy, any thread count.
    #[test]
    fn parallel_search_equals_sequential(
        entries in history(),
        assignment in clustering(),
        threads in 1usize..6,
        bfs in any::<bool>(),
    ) {
        let ttkv = build_store(&entries);
        let clusters = build_clusters(&assignment);
        let oracle = FixOracle::new(|shot: &Screenshot| shot.contains("k0:0"));
        let config = SearchConfig {
            strategy: if bfs { SearchStrategy::Bfs } else { SearchStrategy::Dfs },
            ..SearchConfig::default()
        };
        let sequential = search(&ttkv, &clusters, &k0_trial(), &oracle, &config);
        let parallel = parallel_search(&ttkv, &clusters, &k0_trial(), &oracle, &config, threads);
        prop_assert_eq!(sequential, parallel);
    }

    /// Equality also holds under time bounds (the service pins a search
    /// window), including degenerate empty windows.
    #[test]
    fn parallel_search_equals_sequential_under_bounds(
        entries in history(),
        assignment in clustering(),
        threads in 2usize..5,
        start in 0u64..50_000,
    ) {
        let ttkv = build_store(&entries);
        let clusters = build_clusters(&assignment);
        let oracle = FixOracle::new(|shot: &Screenshot| shot.contains("k0:0"));
        let config = SearchConfig {
            start_time: Some(Timestamp::from_secs(start)),
            ..SearchConfig::default()
        };
        let sequential = search(&ttkv, &clusters, &k0_trial(), &oracle, &config);
        let parallel = parallel_search(&ttkv, &clusters, &k0_trial(), &oracle, &config, threads);
        prop_assert_eq!(sequential, parallel);
    }

    /// DFS and BFS execute the same number of trials (the same visit set)
    /// and agree on whether the error is fixable.
    #[test]
    fn dfs_bfs_agree_on_fixability(entries in history()) {
        let ttkv = build_store(&entries);
        let clusters = singleton_clusters(&ttkv);
        let oracle = FixOracle::new(|shot: &Screenshot| shot.contains("k0:0"));
        let dfs = search(&ttkv, &clusters, &k0_trial(), &oracle, &SearchConfig::default());
        let bfs = search(
            &ttkv,
            &clusters,
            &k0_trial(),
            &oracle,
            &SearchConfig {
                strategy: SearchStrategy::Bfs,
                ..SearchConfig::default()
            },
        );
        prop_assert_eq!(dfs.total_trials, bfs.total_trials);
        prop_assert_eq!(dfs.is_fixed(), bfs.is_fixed());
        // Both find a fix whose rollback really shows the element.
        for outcome in [&dfs, &bfs] {
            if let (Some(n), Some(t)) = (outcome.trials_to_fix, outcome.time_to_fix) {
                prop_assert!(n <= outcome.total_trials);
                prop_assert_eq!(t, TimeDelta::from_secs(5).scale(n as u64));
            }
        }
    }

    /// If any historical value of k0 was 0 *before its final state*, the
    /// singleton search fixes the "k0 must be 0" error; if k0 never took
    /// value 0 anywhere in history, it cannot.
    #[test]
    fn fixability_matches_history_content(entries in history()) {
        let ttkv = build_store(&entries);
        let clusters = singleton_clusters(&ttkv);
        let oracle = FixOracle::new(|shot: &Screenshot| shot.contains("k0:0"));
        let outcome = search(&ttkv, &clusters, &k0_trial(), &oracle, &SearchConfig::default());

        let k0_values: Vec<i64> = entries
            .iter()
            .filter(|(k, _, _)| *k == 0)
            .map(|&(_, _, v)| v)
            .collect();
        let ever_zero = k0_values.contains(&0);
        if !ever_zero {
            prop_assert!(!outcome.is_fixed(), "no zero in history, yet 'fixed'");
        }
        // When the *current* state is already 0 the baseline equals the
        // target; the oracle still accepts rollbacks that show k0:0.
        let current_zero = {
            let snap = ttkv.snapshot_latest();
            snap.get_int("app/k0") == Some(0)
        };
        if ever_zero && !current_zero {
            // Some rollback reaches a zero state... unless every zero write
            // shares its (1s-quantised) transaction with a later overwrite.
            // We only assert the weaker direction plus internal consistency.
            if outcome.is_fixed() {
                prop_assert!(outcome.trials_to_fix.is_some());
                prop_assert!(outcome.screenshots_to_fix >= 1);
            }
        }
    }

    /// Sorted cluster infos are ordered by ascending modification count.
    #[test]
    fn sort_is_by_modification_count(entries in history()) {
        let ttkv = build_store(&entries);
        let clusters = singleton_clusters(&ttkv);
        let infos = sorted_cluster_infos(&ttkv, &clusters, TimeDelta::from_secs(1), None, None);
        for pair in infos.windows(2) {
            prop_assert!(pair[0].modifications <= pair[1].modifications);
        }
    }

    /// Narrowing the time bounds never increases trial counts.
    #[test]
    fn narrower_bounds_mean_fewer_trials(entries in history(), bound in 0u64..50_000) {
        let ttkv = build_store(&entries);
        let clusters = singleton_clusters(&ttkv);
        let oracle = FixOracle::new(|_: &Screenshot| false);
        let unbounded = search(&ttkv, &clusters, &k0_trial(), &oracle, &SearchConfig::default());
        let bounded = search(
            &ttkv,
            &clusters,
            &k0_trial(),
            &oracle,
            &SearchConfig {
                start_time: Some(Timestamp::from_secs(bound)),
                ..SearchConfig::default()
            },
        );
        prop_assert!(bounded.total_trials <= unbounded.total_trials);
    }
}
