//! # ocasta-obs — dependency-free metrics primitives
//!
//! The observability layer for the fleet/repair/stream tiers: atomic
//! [`Counter`]s and [`Gauge`]s, fixed-bucket latency [`Histogram`]s with
//! percentile readout, and a [`Registry`] that names them and snapshots
//! everything as JSON.
//!
//! Two constraints shape the design (`DESIGN.md §5.11`):
//!
//! * **Pure observer.** Recording a metric may never change what the
//!   instrumented code does: every primitive is lock-free on the hot path
//!   (relaxed atomics), records wall-clock only, and feeds nothing back.
//!   The engine's seed-determinism therefore holds bit-for-bit with
//!   metrics on or off, which the CLI test suite asserts on real output
//!   files.
//! * **Allocation-free recording.** Histograms use a *fixed* bucket table
//!   (exponential microsecond bounds) sized at compile time, so a record
//!   from an ingest worker or the WAL appender is one `fetch_add` on a
//!   pre-existing cell — no resizing, no heap traffic, no lock, and no
//!   surprise stall on the very paths whose stalls we are measuring.
//!
//! ```
//! use ocasta_obs::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let batches = registry.counter("fleet.ingest.batches");
//! let stall = registry.histogram("fleet.sweep.stall_us");
//! batches.inc();
//! stall.record_duration(Duration::from_micros(1_250));
//! let json = registry.snapshot_json();
//! assert!(json.contains("\"fleet.ingest.batches\": 1"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (e.g. an epoch, a queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Ratchets the gauge up to `value` if it is larger than the current
    /// reading (a high-water mark).
    pub fn record_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// Current reading.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, microseconds) of the fixed histogram buckets.
///
/// A 1-2.5-5 ladder from 1 µs to 10 s: wide enough for everything from a
/// stripe-lock wait to a full-chain WAL rebase, coarse enough that the
/// whole table is a handful of cache lines. Values above the last bound
/// land in one overflow bucket whose reported quantile is the observed
/// maximum.
pub const BUCKET_BOUNDS_US: [u64; 24] = [
    1,
    2,
    5,
    10,
    25,
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    10_000_000_000,
];

/// A fixed-bucket latency histogram with percentile readout.
///
/// Recording is one relaxed `fetch_add` into a compile-time-sized bucket
/// table plus count/sum/max updates — allocation-free and lock-free, so it
/// is safe on the hottest paths (see the crate docs for why that matters).
/// Quantiles are read back from cumulative bucket counts and reported as
/// the matched bucket's upper bound (the overflow bucket reports the true
/// observed maximum), which is exact enough for regression gating and
/// honest about its resolution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len()],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation, in microseconds.
    pub fn record(&self, value_us: u64) {
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| value_us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len() - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
        self.max.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation, microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound in
    /// microseconds; the overflow bucket reports the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // ceil(q * total), clamped to [1, total]: the rank of the
        // observation the quantile names.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if bucket == BUCKET_BOUNDS_US.len() - 1 {
                    self.max_us()
                } else {
                    BUCKET_BOUNDS_US[bucket]
                };
            }
        }
        self.max_us()
    }
}

/// One named metric handle held by a [`Registry`].
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named, snapshot-able collection of metrics.
///
/// Handles are `Arc`s: instrumented code keeps its own clone and records
/// through relaxed atomics, while the registry retains the name →
/// handle mapping for [`Registry::snapshot_json`]. Requesting an existing
/// name of the same kind returns the *same* handle, so independent
/// subsystems can share a series without plumbing.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry<T, F: FnOnce() -> Metric, G: Fn(&Metric) -> Option<Arc<T>>>(
        &self,
        name: &str,
        make: F,
        cast: G,
    ) -> Arc<T> {
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(existing) = entries
            .iter()
            .filter(|(n, _)| n == name)
            .find_map(|(_, m)| cast(m))
        {
            return existing;
        }
        let metric = make();
        let handle = cast(&metric).expect("just constructed the right kind");
        entries.push((name.to_string(), metric));
        handle
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.entry(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.entry(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.entry(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Serialises every metric as one JSON object, in registration order:
    /// counters and gauges as plain numbers, histograms as
    /// `{count, sum_us, max_us, p50_us, p90_us, p99_us}` objects.
    pub fn snapshot_json(&self) -> String {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in entries.iter() {
            let name = escape(name);
            match metric {
                Metric::Counter(c) => {
                    push_field(&mut counters, &format!("    \"{name}\": {}", c.get()));
                }
                Metric::Gauge(g) => {
                    push_field(&mut gauges, &format!("    \"{name}\": {}", g.get()));
                }
                Metric::Histogram(h) => {
                    push_field(
                        &mut histograms,
                        &format!(
                            "    \"{name}\": {{\"count\": {}, \"sum_us\": {}, \"max_us\": {}, \
                             \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                            h.count(),
                            h.sum_us(),
                            h.max_us(),
                            h.quantile_us(0.50),
                            h.quantile_us(0.90),
                            h.quantile_us(0.99),
                        ),
                    );
                }
            }
        }
        format!(
            "{{\n  \"counters\": {{\n{counters}\n  }},\n  \"gauges\": {{\n{gauges}\n  }},\n  \
             \"histograms\": {{\n{histograms}\n  }}\n}}\n"
        )
    }
}

/// A wall-clock stopwatch — the one sanctioned wall-clock read on
/// deterministic paths.
///
/// The workspace invariant (`DESIGN.md §5.11`, enforced at the source
/// level by `ocasta-lint`'s `wallclock-in-deterministic-path` rule) is
/// that engine, store, and service code never calls `Instant::now()` or
/// `SystemTime::now()` directly: wall-clock time flows *out* into
/// observers — histograms, report fields — and never back into control
/// flow, which is what keeps VOPR runs byte-deterministic with metrics on
/// or off. `Stopwatch` packages that contract as a type: it can be
/// started and its elapsed [`Duration`] read for an observer, but it
/// exposes no absolute timestamp to steer by, and the only module allowed
/// to construct one from the raw clock is this crate.
///
/// ```
/// use ocasta_obs::Stopwatch;
///
/// let timer = Stopwatch::start();
/// let _elapsed = timer.elapsed(); // destined for a histogram or report
/// assert!(Stopwatch::start_if(false).is_none(), "disabled: no clock read");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Starts timing only when `enabled` — the instrumented-path pattern
    /// (`Stopwatch::start_if(metrics.is_some())`), so an uninstrumented
    /// run performs no clock read at all.
    pub fn start_if(enabled: bool) -> Option<Self> {
        enabled.then(Stopwatch::start)
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Appends one `"name": value` field, comma-separating from prior fields.
fn push_field(out: &mut String, field: &str) {
    if !out.is_empty() {
        out.push_str(",\n");
    }
    out.push_str(field);
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        assert_eq!(g.get(), 9);
        g.record_max(3);
        assert_eq!(g.get(), 9, "record_max never lowers");
        g.record_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_quantiles_track_known_distributions() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram reads zero");
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.record(40); // bucket bound 50
        }
        for _ in 0..10 {
            h.record(4_000); // bucket bound 5_000
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_us(), 90 * 40 + 10 * 4_000);
        assert_eq!(h.max_us(), 4_000);
        assert_eq!(h.quantile_us(0.50), 50);
        assert_eq!(h.quantile_us(0.90), 50);
        assert_eq!(h.quantile_us(0.99), 5_000);
        assert_eq!(h.quantile_us(1.0), 5_000);
    }

    #[test]
    fn histogram_overflow_bucket_reports_the_true_max() {
        let h = Histogram::new();
        h.record(999_000_000_000); // beyond every bound: overflow bucket
        assert_eq!(h.quantile_us(0.5), 999_000_000_000);
        assert_eq!(h.max_us(), 999_000_000_000);
    }

    #[test]
    fn registry_shares_handles_by_name_and_kind() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        assert_eq!(b.get(), 1, "same name, same counter");
        // Same name, different kind: a distinct metric, not a clobber.
        let h = registry.histogram("x");
        h.record(10);
        assert_eq!(b.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_json_lists_every_metric() {
        let registry = Registry::new();
        registry.counter("fleet.batches").add(7);
        registry.gauge("stream.epoch").set(3);
        registry.histogram("wal.append_us").record(123);
        let json = registry.snapshot_json();
        assert!(json.contains("\"fleet.batches\": 7"), "{json}");
        assert!(json.contains("\"stream.epoch\": 3"), "{json}");
        assert!(json.contains("\"wal.append_us\""), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        let histogram = registry.histogram("lat");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        counter.inc();
                        histogram.record(i % 100);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 8_000);
        assert_eq!(histogram.count(), 8_000);
    }
}
