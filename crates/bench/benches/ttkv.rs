//! TTKV write/lookup/point-in-time-query throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocasta::{Key, Timestamp, Ttkv, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn populated_store(keys: usize, writes_per_key: usize) -> Ttkv {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = Ttkv::new();
    for k in 0..keys {
        let key = Key::new(format!("app/key{k:05}"));
        for _ in 0..writes_per_key {
            let t = Timestamp::from_millis(rng.random_range(0..86_400_000 * 30));
            store.write(t, key.clone(), Value::from(rng.random_range(0..1_000)));
        }
    }
    store
}

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttkv_write");
    for n in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut store = Ttkv::new();
                for i in 0..n {
                    store.write(
                        Timestamp::from_millis(i as u64),
                        Key::new(format!("app/key{:04}", i % 1000)),
                        Value::from(i),
                    );
                }
                store
            })
        });
    }
    group.finish();
}

fn bench_value_at(c: &mut Criterion) {
    let store = populated_store(1_000, 50);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("ttkv_value_at", |b| {
        b.iter(|| {
            let k = format!("app/key{:05}", rng.random_range(0..1_000));
            let t = Timestamp::from_millis(rng.random_range(0..86_400_000 * 30));
            std::hint::black_box(store.value_at(&k, t)).cloned()
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let store = populated_store(1_000, 50);
    c.bench_function("ttkv_snapshot_1000_keys", |b| {
        b.iter(|| std::hint::black_box(&store).snapshot_at(Timestamp::from_days(15)))
    });
}

fn bench_persist(c: &mut Criterion) {
    let store = populated_store(500, 20);
    c.bench_function("ttkv_save", |b| {
        b.iter(|| std::hint::black_box(&store).save_to_string())
    });
    let text = store.save_to_string();
    c.bench_function("ttkv_load", |b| {
        b.iter(|| Ttkv::load_from_str(std::hint::black_box(&text)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_writes,
    bench_value_at,
    bench_snapshot,
    bench_persist
);
criterion_main!(benches);
