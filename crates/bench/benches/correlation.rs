//! Transaction grouping and correlation-matrix construction throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocasta::{transactions, Correlations, WriteEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_events(n_items: usize, n_events: usize, seed: u64) -> Vec<WriteEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_events)
        .map(|_| {
            WriteEvent::new(
                rng.random_range(0..n_items),
                rng.random_range(0..86_400_000 * 30),
            )
        })
        .collect()
}

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("transactions");
    for n_events in [1_000usize, 10_000, 100_000] {
        let events = random_events(500, n_events, 7);
        group.throughput(Throughput::Elements(n_events as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_events),
            &events,
            |b, events| b.iter(|| transactions(std::hint::black_box(events), 1_000)),
        );
    }
    group.finish();
}

fn bench_correlations(c: &mut Criterion) {
    let events = random_events(500, 50_000, 7);
    let txns = transactions(&events, 1_000);
    c.bench_function("correlations_500_items", |b| {
        b.iter(|| Correlations::from_transactions(500, std::hint::black_box(&txns)))
    });
    let correlations = Correlations::from_transactions(500, &txns);
    c.bench_function("distance_matrix_500_items", |b| {
        b.iter(|| std::hint::black_box(&correlations).to_distance_matrix())
    });
}

criterion_group!(benches, bench_transactions, bench_correlations);
criterion_main!(benches);
