//! Repair-search benchmarks: DFS vs BFS, clustered vs NoClust, and the
//! sort-on/off ablation (DESIGN.md's ablation of the modification-count
//! heuristic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocasta::{
    run_noclust, run_scenario, scenarios, search, singleton_clusters, ClusterParams, FixOracle,
    Ocasta, ScenarioConfig, Screenshot, SearchConfig, SearchStrategy, Trial,
};

fn bench_scenario_end_to_end(c: &mut Criterion) {
    // Error #13 (Chrome) is small and representative: trace generation,
    // clustering and search all included.
    let scenario = scenarios().into_iter().find(|s| s.id == 13).unwrap();
    let mut group = c.benchmark_group("scenario13_end_to_end");
    group.sample_size(10);
    for strategy in [SearchStrategy::Dfs, SearchStrategy::Bfs] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &strategy| {
                let config = ScenarioConfig {
                    strategy,
                    ..ScenarioConfig::default()
                };
                b.iter(|| run_scenario(std::hint::black_box(&scenario), &config))
            },
        );
    }
    group.bench_function("noclust", |b| {
        let config = ScenarioConfig::default();
        b.iter(|| run_noclust(std::hint::black_box(&scenario), &config))
    });
    group.finish();
}

fn bench_search_only(c: &mut Criterion) {
    // Isolate the search: prebuild the store and clustering.
    let scenario = scenarios().into_iter().find(|s| s.id == 15).unwrap();
    let config = ScenarioConfig::default();
    let (store, _inject) = ocasta::prepare_store(&scenario, &config);
    let clustering = Ocasta::new(ClusterParams::default()).cluster_store(&store);
    let clusters = clustering.clusters().to_vec();
    let singles = singleton_clusters(&store);
    let trial = scenario.trial();
    let oracle = scenario.oracle();
    let mut group = c.benchmark_group("search_only_acrobat");
    group.sample_size(10);
    group.bench_function("clustered_dfs", |b| {
        b.iter(|| {
            search(
                std::hint::black_box(&store),
                &clusters,
                &trial,
                &oracle,
                &SearchConfig::default(),
            )
        })
    });
    group.bench_function("noclust_dfs", |b| {
        b.iter(|| {
            search(
                std::hint::black_box(&store),
                &singles,
                &trial,
                &oracle,
                &SearchConfig::default(),
            )
        })
    });
    group.finish();
}

fn bench_trial_render(c: &mut Criterion) {
    let trial = Trial::new("render", |config| {
        let mut shot = Screenshot::new();
        shot.add_if(
            config.get_bool("acrobat/ui/menu_bar").unwrap_or(true),
            "menu_bar",
        );
        shot
    });
    let oracle = FixOracle::element_visible("menu_bar");
    let config = ocasta::ConfigState::new();
    c.bench_function("trial_render_and_judge", |b| {
        b.iter(|| {
            let shot = trial.run(std::hint::black_box(&config));
            oracle.is_fixed(&shot)
        })
    });
}

criterion_group!(
    benches,
    bench_scenario_end_to_end,
    bench_search_only,
    bench_trial_render
);
criterion_main!(benches);
