//! Configuration-file parser and flush-differ throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ocasta::{diff_flush, parse, write, Format, Node};

/// A representative ~N-entry configuration document.
fn sample_doc(entries: usize) -> Node {
    let sections: Vec<(String, Node)> = (0..entries / 4)
        .map(|i| {
            (
                format!("section{i:03}"),
                Node::map([
                    ("enabled", Node::scalar(i % 2 == 0)),
                    ("level", Node::scalar(i as i64)),
                    ("name", Node::scalar(format!("value {i}"))),
                    ("ratio", Node::scalar(i as f64 / 7.0)),
                ]),
            )
        })
        .collect();
    Node::Map(sections)
}

fn bench_parse(c: &mut Criterion) {
    let doc = sample_doc(400);
    let mut group = c.benchmark_group("parse");
    for format in [Format::Json, Format::Xml, Format::Ini, Format::PostScript] {
        let text = write(format, &doc);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{format}")),
            &text,
            |b, text| b.iter(|| parse(format, std::hint::black_box(text)).unwrap()),
        );
    }
    group.finish();
}

fn bench_flatten_and_diff(c: &mut Criterion) {
    let before = sample_doc(400);
    let mut after = sample_doc(400);
    if let Node::Map(entries) = &mut after {
        entries.truncate(entries.len() - 5); // a flush that removed a section
    }
    c.bench_function("flatten_400_entries", |b| {
        b.iter(|| std::hint::black_box(&before).flatten())
    });
    let flat_before = before.flatten();
    let flat_after = after.flatten();
    c.bench_function("diff_flush_400_entries", |b| {
        b.iter(|| {
            diff_flush(
                std::hint::black_box(&flat_before),
                std::hint::black_box(&flat_after),
            )
        })
    });
}

criterion_group!(benches, bench_parse, bench_flatten_and_diff);
criterion_main!(benches);
