//! Clustering scalability: HAC runtime vs item count and linkage criterion
//! (the ablation behind the paper's choice of maximum linkage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ocasta::{hac, DistanceMatrix, Linkage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = DistanceMatrix::new_filled(n, f64::INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            // Sparse finite distances, like real correlation graphs.
            if rng.random_bool(0.05) {
                m.set(i, j, rng.random_range(0.5..2.0));
            }
        }
    }
    m
}

fn bench_hac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hac");
    for n in [50usize, 200, 750] {
        let matrix = random_matrix(n, 42);
        for linkage in Linkage::ALL {
            group.bench_with_input(BenchmarkId::new(linkage.name(), n), &matrix, |b, matrix| {
                b.iter(|| hac(std::hint::black_box(matrix), linkage))
            });
        }
    }
    group.finish();
}

fn bench_cut(c: &mut Criterion) {
    let matrix = random_matrix(750, 42);
    let dendrogram = hac(&matrix, Linkage::Complete);
    c.bench_function("dendrogram_cut_750", |b| {
        b.iter(|| std::hint::black_box(&dendrogram).cut(0.5))
    });
}

criterion_group!(benches, bench_hac, bench_cut);
criterion_main!(benches);
