//! Figure 4 — user-study comparison: time to repair with Ocasta (create the
//! trial + select the fixed screenshot) versus fixing manually (5-minute
//! cutoff).
//!
//! The paper ran 19 human participants over errors #11, #13, #15 and #16;
//! this module simulates that population. Per-case parameters encode the
//! paper's qualitative findings: trials were easy to create (rated 1/5 by
//! 74% of participants), screenshots easy to pick, and only case #16 was
//! manually fixable by most participants (which "significantly lowered the
//! average time for the manual fix").

use ocasta::{simulate_case, CaseUserModel, UserStudyParams};

use crate::render_table;

/// The four study cases with their population parameters.
pub fn case_models() -> Vec<CaseUserModel> {
    vec![
        CaseUserModel {
            error_id: 11, // EOG: cannot print
            trial_creation_mean_s: 35.0,
            trial_creation_sd_s: 10.0,
            per_screenshot_s: 8.0,
            screenshots: 1,
            manual_success_prob: 0.25,
            manual_time_mean_s: 240.0,
            manual_time_sd_s: 45.0,
            cutoff_s: 300.0,
        },
        CaseUserModel {
            error_id: 13, // Chrome: bookmark bar missing
            trial_creation_mean_s: 30.0,
            trial_creation_sd_s: 8.0,
            per_screenshot_s: 8.0,
            screenshots: 2,
            manual_success_prob: 0.35,
            manual_time_mean_s: 210.0,
            manual_time_sd_s: 50.0,
            cutoff_s: 300.0,
        },
        CaseUserModel {
            error_id: 15, // Acrobat: menu bar disappears
            trial_creation_mean_s: 45.0,
            trial_creation_sd_s: 12.0,
            per_screenshot_s: 8.0,
            screenshots: 2,
            manual_success_prob: 0.15,
            manual_time_mean_s: 260.0,
            manual_time_sd_s: 35.0,
            cutoff_s: 300.0,
        },
        CaseUserModel {
            error_id: 16, // Acrobat: find box missing — most users fixed it
            trial_creation_mean_s: 40.0,
            trial_creation_sd_s: 10.0,
            per_screenshot_s: 8.0,
            screenshots: 4,
            manual_success_prob: 0.7,
            manual_time_mean_s: 120.0,
            manual_time_sd_s: 45.0,
            cutoff_s: 300.0,
        },
    ]
}

/// Renders the per-case time comparison.
pub fn run() -> String {
    let params = UserStudyParams::default();
    let body: Vec<Vec<String>> = case_models()
        .iter()
        .map(|model| {
            let result = simulate_case(model, &params);
            vec![
                format!("#{}", model.error_id),
                format!("{:.0}s", result.ocasta_mean_s()),
                format!("{:.0}s", result.manual_mean_s()),
                format!("{:.0}%", result.manual_success_rate * 100.0),
                format!("{:.1}x", result.manual_mean_s() / result.ocasta_mean_s()),
            ]
        })
        .collect();
    let mut out = String::from(
        "Figure 4: Time to fix with Ocasta vs manually (19 simulated participants,\n\
         5-minute manual cutoff; manual means are lower bounds)\n\n",
    );
    out.push_str(&render_table(
        &[
            "Case",
            "Ocasta (trial+select)",
            "Manual",
            "Manual success",
            "Speedup",
        ],
        &body,
    ));
    out
}
