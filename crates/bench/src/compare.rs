//! Perf-baseline gating: diff a fresh `BENCH_*.json` against its tracked
//! baseline and fail on regression.
//!
//! Every scale bench (`fleet`, `stream`, `repair`, `retention`) emits a
//! flat machine-readable JSON artifact next to its human table. This
//! module reads the tracked baseline copy (under `baselines/`) and a
//! freshly generated one, extracts the **top-level numeric fields**, and
//! checks a small set of per-bench gates — each a metric, a direction,
//! and a generous noise ratio. CI runs the `bench-compare` binary after
//! the bench smokes; a regression past a gate fails the job, so a perf
//! cliff cannot land silently just because the tables still render.
//!
//! The parser is deliberately tiny: benches emit their JSON by hand (no
//! serde in the workspace), so the comparator parses it by hand too —
//! top-level `"key": number` pairs are captured, every other value shape
//! (strings, arrays, nested objects, booleans) is skipped structurally.

use std::collections::BTreeMap;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Cost-like metric (latency, footprint ratio): regressions are up.
    LowerIsBetter,
    /// Rate-like metric (throughput): regressions are down.
    HigherIsBetter,
}

/// One gated metric of one bench.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Top-level JSON key the gate reads.
    pub key: &'static str,
    /// Which direction counts as a regression.
    pub direction: Direction,
    /// Noise headroom as a multiplier: a `LowerIsBetter` metric fails at
    /// `fresh > baseline * max_ratio + abs_slack`; a `HigherIsBetter` one
    /// at `fresh < baseline / max_ratio - abs_slack`. Ratios are generous
    /// because CI runners are noisy and shared — the gates exist to catch
    /// order-of-magnitude cliffs, not 10% wobble.
    pub max_ratio: f64,
    /// Additive slack in the metric's own unit, so near-zero baselines
    /// don't turn scheduler jitter into failures.
    pub abs_slack: f64,
}

/// Every bench with gates, in the order `bench-compare` checks them.
pub const GATED_BENCHES: [&str; 4] = ["fleet", "stream", "repair", "retention"];

/// The gate set for one bench (empty for unknown names).
pub fn gates_for(bench: &str) -> &'static [Gate] {
    match bench {
        "fleet" => &[Gate {
            key: "best_events_per_sec",
            direction: Direction::HigherIsBetter,
            max_ratio: 3.0,
            abs_slack: 0.0,
        }],
        "stream" => &[Gate {
            key: "stream_amortized_us",
            direction: Direction::LowerIsBetter,
            max_ratio: 3.0,
            abs_slack: 1.0,
        }],
        "repair" => &[
            Gate {
                key: "best_parallel_ms",
                direction: Direction::LowerIsBetter,
                max_ratio: 3.0,
                abs_slack: 50.0,
            },
            // Session open is the epoch-pin grab: O(shards), tens of
            // microseconds. The gate keeps it from quietly regressing
            // back to O(live state) — the clone yardstick at the same
            // size runs orders of magnitude above this bound.
            Gate {
                key: "session_open_us",
                direction: Direction::LowerIsBetter,
                max_ratio: 3.0,
                abs_slack: 500.0,
            },
        ],
        "retention" => &[
            Gate {
                key: "final_store_ratio",
                direction: Direction::LowerIsBetter,
                max_ratio: 1.15,
                abs_slack: 0.05,
            },
            Gate {
                key: "final_disk_ratio",
                direction: Direction::LowerIsBetter,
                max_ratio: 1.15,
                abs_slack: 0.05,
            },
            Gate {
                key: "median_sweep_stall_us",
                direction: Direction::LowerIsBetter,
                max_ratio: 3.0,
                abs_slack: 2000.0,
            },
            // Snapshot bytes are deterministic for a fixed feed, so this
            // gate is really an encoding-bloat tripwire; the slack absorbs
            // small vocabulary shifts, not a format regression.
            Gate {
                key: "snapshot_v2_bytes",
                direction: Direction::LowerIsBetter,
                max_ratio: 1.5,
                abs_slack: 4096.0,
            },
            // Load time of the settled v2 segment. Wide ratio + slack:
            // this is a wall-clock reading on shared CI hardware.
            Gate {
                key: "replay_v2_us",
                direction: Direction::LowerIsBetter,
                max_ratio: 3.0,
                abs_slack: 20_000.0,
            },
        ],
        _ => &[],
    }
}

/// One gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// The gated metric.
    pub key: &'static str,
    /// Baseline reading.
    pub baseline: f64,
    /// Fresh reading.
    pub fresh: f64,
    /// The bound the fresh reading was held to.
    pub limit: f64,
    /// Whether the fresh reading stayed within the bound.
    pub pass: bool,
}

/// Extracts every top-level `"key": number` pair of a JSON object.
///
/// Nested objects, arrays, strings and literals are skipped structurally
/// (so a bench can carry a `checkpoints` array or a note string without
/// confusing the comparator); only numbers sitting directly under the
/// root object are captured.
///
/// # Errors
///
/// Returns a message naming the byte offset on malformed input.
pub fn top_level_numbers(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut cur = Cursor {
        bytes: json.as_bytes(),
        pos: 0,
    };
    let mut numbers = BTreeMap::new();
    cur.skip_ws();
    cur.expect(b'{')?;
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        return Ok(numbers);
    }
    loop {
        cur.skip_ws();
        let key = cur.parse_string()?;
        cur.skip_ws();
        cur.expect(b':')?;
        cur.skip_ws();
        if let Some(value) = cur.skip_value()? {
            numbers.insert(key, value);
        }
        cur.skip_ws();
        match cur.bump() {
            Some(b',') => continue,
            Some(b'}') => return Ok(numbers),
            other => return Err(cur.fail(format!("expected `,` or `}}`, got {other:?}"))),
        }
    }
}

/// Byte cursor over the raw JSON text.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn fail(&self, what: String) -> String {
        format!("bad JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek();
        if byte.is_some() {
            self.pos += 1;
        }
        byte
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, wanted: u8) -> Result<(), String> {
        match self.bump() {
            Some(byte) if byte == wanted => Ok(()),
            other => Err(self.fail(format!("expected `{}`, got {other:?}", wanted as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => return String::from_utf8(out).map_err(|e| self.fail(e.to_string())),
                Some(b'\\') => {
                    // Escapes only need to keep the scan aligned; the
                    // comparator never interprets string contents.
                    match self.bump() {
                        Some(escaped) => {
                            out.push(b'\\');
                            out.push(escaped);
                        }
                        None => return Err(self.fail("unterminated escape".into())),
                    }
                }
                Some(byte) => out.push(byte),
                None => return Err(self.fail("unterminated string".into())),
            }
        }
    }

    /// Consumes one value; returns `Some(n)` only for bare numbers.
    fn skip_value(&mut self) -> Result<Option<f64>, String> {
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(None)
            }
            Some(b'{') => {
                self.skip_container(b'{', b'}')?;
                Ok(None)
            }
            Some(b'[') => {
                self.skip_container(b'[', b']')?;
                Ok(None)
            }
            Some(b't') => self.skip_literal("true").map(|()| None),
            Some(b'f') => self.skip_literal("false").map(|()| None),
            Some(b'n') => self.skip_literal("null").map(|()| None),
            Some(_) => self.parse_number().map(Some),
            None => Err(self.fail("expected a value".into())),
        }
    }

    /// Skips a balanced `{...}` or `[...]`, stepping over strings so
    /// braces inside them don't count.
    fn skip_container(&mut self, open: u8, close: u8) -> Result<(), String> {
        self.expect(open)?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                }
                Some(byte) => {
                    if byte == open {
                        depth += 1;
                    } else if byte == close {
                        depth -= 1;
                    }
                    self.pos += 1;
                }
                None => return Err(self.fail(format!("unterminated `{}`", open as char))),
            }
        }
        Ok(())
    }

    fn skip_literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.fail(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| self.fail(e.to_string()))?;
        text.parse::<f64>()
            .map_err(|_| self.fail(format!("bad number `{text}`")))
    }
}

/// Evaluates one bench's gates over its baseline and fresh JSON.
///
/// # Errors
///
/// Unknown bench name, malformed JSON, a gated metric missing from
/// either side, or the two sides carrying different top-level key sets
/// at all — all of which the caller should treat as a failure, not a
/// skip. A bench that stops emitting its gated metric would otherwise
/// pass forever, and a committed baseline that predates a schema change
/// (keys added or removed) would otherwise sit stale forever; the error
/// names the keys on each side of the diff so the fix — regenerate the
/// stale artifact — is obvious.
pub fn compare(
    bench: &str,
    baseline_json: &str,
    fresh_json: &str,
) -> Result<Vec<GateResult>, String> {
    let gates = gates_for(bench);
    if gates.is_empty() {
        return Err(format!("no gates defined for bench `{bench}`"));
    }
    let baseline =
        top_level_numbers(baseline_json).map_err(|e| format!("baseline {bench}: {e}"))?;
    let fresh = top_level_numbers(fresh_json).map_err(|e| format!("fresh {bench}: {e}"))?;
    // Schema drift check, both directions, before any gate math: the key
    // sets must match exactly or one side is stale.
    let missing_from_fresh: Vec<&str> = baseline
        .keys()
        .filter(|k| !fresh.contains_key(*k))
        .map(String::as_str)
        .collect();
    let missing_from_baseline: Vec<&str> = fresh
        .keys()
        .filter(|k| !baseline.contains_key(*k))
        .map(String::as_str)
        .collect();
    if !missing_from_fresh.is_empty() || !missing_from_baseline.is_empty() {
        let mut diff = Vec::new();
        if !missing_from_fresh.is_empty() {
            diff.push(format!(
                "missing from fresh: {}",
                missing_from_fresh.join(", ")
            ));
        }
        if !missing_from_baseline.is_empty() {
            diff.push(format!(
                "missing from baseline: {}",
                missing_from_baseline.join(", ")
            ));
        }
        return Err(format!(
            "{bench} JSON schema drift ({}) — regenerate the stale artifact",
            diff.join("; ")
        ));
    }
    gates
        .iter()
        .map(|gate| {
            let base = *baseline
                .get(gate.key)
                .ok_or_else(|| format!("baseline {bench} JSON is missing `{}`", gate.key))?;
            let new = *fresh
                .get(gate.key)
                .ok_or_else(|| format!("fresh {bench} JSON is missing `{}`", gate.key))?;
            let (limit, pass) = match gate.direction {
                Direction::LowerIsBetter => {
                    let limit = base * gate.max_ratio + gate.abs_slack;
                    (limit, new <= limit)
                }
                Direction::HigherIsBetter => {
                    let limit = base / gate.max_ratio - gate.abs_slack;
                    (limit, new >= limit)
                }
            };
            Ok(GateResult {
                key: gate.key,
                baseline: base,
                fresh: new,
                limit,
                pass,
            })
        })
        .collect()
}

/// Renders one bench's gate verdicts as an aligned table block.
pub fn render(bench: &str, results: &[GateResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.key.to_string(),
                format!("{:.3}", r.baseline),
                format!("{:.3}", r.fresh),
                format!("{:.3}", r.limit),
                if r.pass {
                    "ok".into()
                } else {
                    "REGRESSED".into()
                },
            ]
        })
        .collect();
    format!(
        "bench {bench}:\n{}",
        crate::render_table(&["Metric", "Baseline", "Fresh", "Limit", "Verdict"], &rows)
    )
}

/// The `bench-compare` binary's whole job, separated for testing: reads
/// `BENCH_<bench>.json` under `baseline_dir` and `fresh_dir` for each
/// requested bench, evaluates the gates, and renders a report.
///
/// # Errors
///
/// Returns the rendered report (with failures marked) as the error value
/// when any gate regresses or any input is unreadable.
pub fn run_cli(
    benches: &[String],
    baseline_dir: &std::path::Path,
    fresh_dir: &std::path::Path,
) -> Result<String, String> {
    let mut out = String::new();
    let mut failed = false;
    for bench in benches {
        let read = |dir: &std::path::Path| -> Result<String, String> {
            let path = dir.join(format!("BENCH_{bench}.json"));
            std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))
        };
        let verdict = read(baseline_dir)
            .and_then(|baseline| read(fresh_dir).map(|fresh| (baseline, fresh)))
            .and_then(|(baseline, fresh)| compare(bench, &baseline, &fresh));
        match verdict {
            Ok(results) => {
                failed |= results.iter().any(|r| !r.pass);
                out.push_str(&render(bench, &results));
                out.push('\n');
            }
            Err(e) => {
                failed = true;
                out.push_str(&format!("bench {bench}: FAILED — {e}\n\n"));
            }
        }
    }
    if failed {
        out.push_str("bench-compare: REGRESSION (or unreadable input) — see above\n");
        Err(out)
    } else {
        out.push_str("bench-compare: all gates within baseline thresholds\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_extracts_only_top_level_numbers() {
        let json = r#"{
            "bench": "retention",
            "final_store_ratio": 0.3172,
            "checkpoints": [{"day": 10.0, "events": 5}, {"day": 20.0}],
            "nested": {"inner": 7, "note": "a \" quoted } brace"},
            "note": "braces { ] in strings are skipped",
            "flag": true, "missing": null,
            "median_sweep_stall_us": 1523,
            "rate": -2.5e3
        }"#;
        let numbers = top_level_numbers(json).unwrap();
        assert_eq!(numbers.get("final_store_ratio"), Some(&0.3172));
        assert_eq!(numbers.get("median_sweep_stall_us"), Some(&1523.0));
        assert_eq!(numbers.get("rate"), Some(&-2500.0));
        assert!(!numbers.contains_key("day"), "{numbers:?}");
        assert!(!numbers.contains_key("inner"), "{numbers:?}");
        assert_eq!(numbers.len(), 3, "{numbers:?}");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(top_level_numbers("").is_err());
        assert!(top_level_numbers("[1, 2]").is_err());
        assert!(top_level_numbers("{\"a\": }").is_err());
        assert!(top_level_numbers("{\"a\": 1").is_err());
        assert!(top_level_numbers("{}").unwrap().is_empty());
    }

    #[test]
    fn parity_passes_every_gate() {
        for bench in GATED_BENCHES {
            let json = match bench {
                "fleet" => "{\"best_events_per_sec\": 50000.0}",
                "stream" => "{\"stream_amortized_us\": 2.5}",
                "repair" => "{\"best_parallel_ms\": 120.0, \"session_open_us\": 40.0}",
                _ => {
                    "{\"final_store_ratio\": 0.31, \"final_disk_ratio\": 0.28, \
                     \"median_sweep_stall_us\": 1500, \"snapshot_v2_bytes\": 250000, \
                     \"replay_v2_us\": 900}"
                }
            };
            let results = compare(bench, json, json).unwrap();
            assert!(results.iter().all(|r| r.pass), "{bench}: {results:?}");
        }
    }

    #[test]
    fn synthetic_regressions_fail_their_gate() {
        // Cost metric blown past ratio + slack.
        let results = compare(
            "stream",
            "{\"stream_amortized_us\": 2.5}",
            "{\"stream_amortized_us\": 25.0}",
        )
        .unwrap();
        assert!(!results[0].pass, "{results:?}");

        // Throughput cratered below baseline / ratio.
        let results = compare(
            "fleet",
            "{\"best_events_per_sec\": 50000.0}",
            "{\"best_events_per_sec\": 4000.0}",
        )
        .unwrap();
        assert!(!results[0].pass, "{results:?}");

        // A ratio metric creeping past its bound fails even though the
        // stall gate next to it passes — gates are independent.
        let results = compare(
            "retention",
            "{\"final_store_ratio\": 0.31, \"final_disk_ratio\": 0.28, \
             \"median_sweep_stall_us\": 1500, \"snapshot_v2_bytes\": 250000, \
             \"replay_v2_us\": 900}",
            "{\"final_store_ratio\": 0.31, \"final_disk_ratio\": 0.55, \
             \"median_sweep_stall_us\": 1500, \"snapshot_v2_bytes\": 250000, \
             \"replay_v2_us\": 900}",
        )
        .unwrap();
        assert_eq!(
            results
                .iter()
                .filter(|r| !r.pass)
                .map(|r| r.key)
                .collect::<Vec<_>>(),
            vec!["final_disk_ratio"],
            "{results:?}"
        );
    }

    #[test]
    fn improvements_and_noise_within_slack_pass() {
        // Faster is never a regression for a cost metric.
        let results = compare(
            "repair",
            "{\"best_parallel_ms\": 120.0, \"session_open_us\": 40.0}",
            "{\"best_parallel_ms\": 12.0, \"session_open_us\": 35.0}",
        )
        .unwrap();
        assert!(results.iter().all(|r| r.pass), "{results:?}");

        // A near-zero baseline tolerates jitter through abs_slack.
        let results = compare(
            "retention",
            "{\"final_store_ratio\": 0.31, \"final_disk_ratio\": 0.28, \
             \"median_sweep_stall_us\": 3, \"snapshot_v2_bytes\": 250000, \
             \"replay_v2_us\": 900}",
            "{\"final_store_ratio\": 0.31, \"final_disk_ratio\": 0.28, \
             \"median_sweep_stall_us\": 800, \"snapshot_v2_bytes\": 250000, \
             \"replay_v2_us\": 900}",
        )
        .unwrap();
        assert!(results.iter().all(|r| r.pass), "{results:?}");
    }

    #[test]
    fn missing_gated_metric_is_an_error_not_a_skip() {
        let err = compare("retention", "{\"final_store_ratio\": 0.31}", "{}").unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let err = compare("nosuchbench", "{}", "{}").unwrap_err();
        assert!(err.contains("no gates"), "{err}");
    }

    #[test]
    fn schema_drift_fails_in_both_directions() {
        // A key the baseline carries but the fresh run dropped — a stale
        // or broken emitter, even if the key isn't gated.
        let err = compare(
            "stream",
            "{\"stream_amortized_us\": 2.5, \"batch_amortized_us\": 9.0}",
            "{\"stream_amortized_us\": 2.5}",
        )
        .unwrap_err();
        assert!(err.contains("missing from fresh"), "{err}");
        assert!(err.contains("batch_amortized_us"), "{err}");

        // A key the fresh run added that the committed baseline predates —
        // the direction that used to pass silently and leave the artifact
        // stale forever.
        let err = compare(
            "stream",
            "{\"stream_amortized_us\": 2.5}",
            "{\"stream_amortized_us\": 2.5, \"snapshot_v2_bytes\": 1000}",
        )
        .unwrap_err();
        assert!(err.contains("missing from baseline"), "{err}");
        assert!(err.contains("snapshot_v2_bytes"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn every_bench_json_emitter_satisfies_its_own_gates() {
        // The real emitters and the gate keys must never drift apart:
        // build one tiny artifact per bench through the actual `to_json`
        // and check the gated keys parse out of it.
        let fleet_json = crate::fleet::to_json(
            &[crate::fleet::Sample {
                threads: 1,
                shards: 1,
                mutations: 10,
                events_per_sec: 1000.0,
                total_secs: 0.01,
            }],
            500.0,
            0.02,
        );
        let stream_json = crate::stream::to_json(
            &[crate::stream::Sample {
                events: 100,
                batch_ms: 1.0,
                stream_ms: 0.5,
                batch_amortized_us: 10.0,
                stream_amortized_us: 5.0,
            }],
            7,
        );
        let repair_json = crate::repair::to_json(
            &[crate::repair::Sample {
                days: 21,
                events: 100,
                trials: 5,
                sequential_ms: 10.0,
                parallel_ms: vec![6.0, 4.0],
            }],
            &[crate::repair::SessionSample {
                ops: 10_000,
                pin_us: 40.0,
                clone_us: 900.0,
            }],
        );
        let retention_json = crate::retention::to_json(
            &crate::retention::SweepOutcome {
                samples: vec![crate::retention::Sample {
                    day: 60.0,
                    events: 1000,
                    off_store_bytes: 1000,
                    on_store_bytes: 300,
                    off_disk_bytes: 2000,
                    on_disk_bytes: 600,
                    pruned_versions: 50,
                    sweep_pruned_versions: 5,
                    sweep_stall_us: 100,
                    rebuild_stall_us: 200,
                }],
                settled_on_disk_bytes: 500,
                settled_off_disk_bytes: 2000,
                settle_stall_us: 300,
                snapshot_v2_bytes: 400,
                snapshot_v1_bytes: 900,
                replay_v2_us: 50,
                replay_v1_us: 120,
            },
            "equivalent",
        );
        for (bench, json) in [
            ("fleet", fleet_json),
            ("stream", stream_json),
            ("repair", repair_json),
            ("retention", retention_json),
        ] {
            let numbers = top_level_numbers(&json).unwrap();
            for gate in gates_for(bench) {
                assert!(
                    numbers.contains_key(gate.key),
                    "{bench} emitter lost gated key {}: {json}",
                    gate.key
                );
            }
            let results = compare(bench, &json, &json).unwrap();
            assert!(results.iter().all(|r| r.pass), "{bench}: {results:?}");
        }
    }

    #[test]
    fn run_cli_reports_and_fails_end_to_end() {
        let dir = std::env::temp_dir().join(format!("ocasta-bench-compare-{}", std::process::id()));
        let baseline_dir = dir.join("baseline");
        let fresh_dir = dir.join("fresh");
        std::fs::create_dir_all(&baseline_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();
        let write = |dir: &std::path::Path, value: f64| {
            std::fs::write(
                dir.join("BENCH_stream.json"),
                format!("{{\"stream_amortized_us\": {value}}}"),
            )
            .unwrap();
        };
        write(&baseline_dir, 2.5);
        write(&fresh_dir, 2.6);
        let benches = vec!["stream".to_string()];
        let report = run_cli(&benches, &baseline_dir, &fresh_dir).unwrap();
        assert!(report.contains("all gates within"), "{report}");

        write(&fresh_dir, 250.0);
        let report = run_cli(&benches, &baseline_dir, &fresh_dir).unwrap_err();
        assert!(report.contains("REGRESSED"), "{report}");

        // Missing fresh artifact is a hard failure too.
        std::fs::remove_file(fresh_dir.join("BENCH_stream.json")).unwrap();
        let report = run_cli(&benches, &baseline_dir, &fresh_dir).unwrap_err();
        assert!(report.contains("cannot read"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
