//! Table III — the 16 real configuration errors used in the evaluation.

use ocasta::scenarios;

use crate::render_table;

/// Renders the scenario catalog in the paper's shape.
pub fn run() -> String {
    let body: Vec<Vec<String>> = scenarios()
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.trace_name.to_owned(),
                s.model().display_name.to_owned(),
                s.logger.to_string(),
                s.description.to_owned(),
            ]
        })
        .collect();
    let mut out = String::from("Table III: Real configuration errors used in our evaluation\n\n");
    out.push_str(&render_table(
        &["Case", "Trace", "Application", "Logger", "Description"],
        &body,
    ));
    out
}
