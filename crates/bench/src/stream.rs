//! Streaming versus batch reclustering cost as event history grows.
//!
//! The batch pipeline answers every clustering query by rescanning the
//! whole recorded history — O(history) per query, so serving fresh
//! clusters under live traffic gets linearly slower as the deployment
//! ages. The streaming pipeline absorbs each event once and answers
//! queries from its live state — the per-query cost tracks the *key
//! population*, not the event count. This sweep makes that visible (and
//! asserts, at every checkpoint, that the two answers are identical), via
//! `cargo run -p ocasta-bench --bin stream --release`.

use std::time::Instant;

use ocasta::fleet::{fleet_machines, FleetRunConfig};
use ocasta::{
    cluster_correlations, cluster_events, mutation_feed, ClusterParams, IncrementalCorrelations,
    TimePrecision, WriteEvent,
};

use crate::render_table;

/// Machines in the benchmark fleet.
pub const MACHINES: usize = 12;
/// Days of simulated usage per machine.
pub const DAYS: u64 = 30;
/// Clustering queries served along the stream.
pub const CHECKPOINTS: usize = 8;

/// One checkpoint of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Events absorbed so far.
    pub events: usize,
    /// Full batch recluster at this point, milliseconds.
    pub batch_ms: f64,
    /// Streaming absorb-delta + query at this point, milliseconds.
    pub stream_ms: f64,
    /// Cumulative batch cost per event, microseconds.
    pub batch_amortized_us: f64,
    /// Cumulative streaming cost per event, microseconds.
    pub stream_amortized_us: f64,
}

/// The fixed, time-ordered mutation stream every configuration consumes:
/// the fleet's events, interned to dense items and quantised to seconds
/// (the deployed loggers' precision). Returns the events and the item
/// count.
pub fn workload() -> (Vec<WriteEvent>, usize) {
    let machines = fleet_machines(&FleetRunConfig {
        machines: MACHINES,
        days: DAYS,
        seed: 42,
        apps: vec!["gedit".into(), "evolution".into(), "chrome".into()],
        ..FleetRunConfig::default()
    })
    .expect("catalog names are valid");
    let mut index = std::collections::HashMap::new();
    let mut events = Vec::new();
    for machine in &machines {
        for (key, t) in mutation_feed(machine.stream()) {
            let next = index.len();
            let item = *index.entry(key).or_insert(next);
            events.push(WriteEvent::new(
                item,
                TimePrecision::Seconds.apply(t).as_millis(),
            ));
        }
    }
    events.sort_unstable();
    let n_items = index.len();
    (events, n_items)
}

/// Runs the sweep: at each checkpoint, a full batch recluster over the
/// whole prefix versus a streaming absorb-of-the-delta plus live query.
///
/// # Panics
///
/// Panics if the streaming and batch partitions ever differ — the sweep
/// doubles as an equivalence check, so a regression cannot produce a
/// plausible-looking table.
pub fn sweep(events: &[WriteEvent], n_items: usize, params: &ClusterParams) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut incr = IncrementalCorrelations::with_items(n_items, params.window_ms);
    let mut absorbed = 0usize;
    let mut batch_total = 0.0f64;
    let mut stream_total = 0.0f64;
    for checkpoint in 1..=CHECKPOINTS {
        let upto = events.len() * checkpoint / CHECKPOINTS;

        // Streaming: absorb only the delta, seal, serve from live state.
        let started = Instant::now();
        for &event in &events[absorbed..upto] {
            incr.observe(event);
            incr.advance_watermark(event.time_ms);
        }
        absorbed = upto;
        let stream_partition = cluster_correlations(&incr.snapshot(), params);
        let stream_ms = started.elapsed().as_secs_f64() * 1e3;

        // Batch: stop the world and rescan the whole prefix.
        let started = Instant::now();
        let batch_partition = cluster_events(n_items, &events[..upto], params);
        let batch_ms = started.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            stream_partition, batch_partition,
            "streaming != batch at {upto} events"
        );

        batch_total += batch_ms;
        stream_total += stream_ms;
        samples.push(Sample {
            events: upto,
            batch_ms,
            stream_ms,
            batch_amortized_us: batch_total * 1e3 / upto as f64,
            stream_amortized_us: stream_total * 1e3 / upto as f64,
        });
    }
    samples
}

/// Serialises the sweep as machine-readable JSON (`BENCH_stream.json`),
/// flat top-level numbers for `bench-compare` to gate on.
pub fn to_json(samples: &[Sample], n_items: usize) -> String {
    let last = samples.last().expect("checkpoints > 0");
    format!(
        "{{\n  \"bench\": \"stream\",\n  \"machines\": {MACHINES},\n  \"days\": {DAYS},\n  \
         \"keys\": {n_items},\n  \"events\": {},\n  \"final_batch_ms\": {:.3},\n  \
         \"final_stream_ms\": {:.3},\n  \"batch_amortized_us\": {:.4},\n  \
         \"stream_amortized_us\": {:.4}\n}}\n",
        last.events,
        last.batch_ms,
        last.stream_ms,
        last.batch_amortized_us,
        last.stream_amortized_us,
    )
}

/// Renders the sweep and the verdict. Returns `(human table, machine
/// JSON)`.
pub fn run() -> (String, String) {
    let (events, n_items) = workload();
    let params = ClusterParams::default();
    let samples = sweep(&events, n_items, &params);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.events.to_string(),
                format!("{:.2}", s.batch_ms),
                format!("{:.2}", s.stream_ms),
                format!("{:.3}", s.batch_amortized_us),
                format!("{:.3}", s.stream_amortized_us),
            ]
        })
        .collect();
    let mut out = format!(
        "Streaming vs batch reclustering ({MACHINES} machines x {DAYS} days, \
         {} keys, {} events, {CHECKPOINTS} queries)\n\n",
        n_items,
        events.len(),
    );
    out.push_str(&render_table(
        &[
            "Events",
            "Batch ms",
            "Stream ms",
            "Batch us/ev",
            "Stream us/ev",
        ],
        &rows,
    ));

    let first = samples.first().expect("checkpoints > 0");
    let last = samples.last().expect("checkpoints > 0");
    out.push_str(&format!(
        "\nstreaming == batch at every checkpoint: ok\n\
         batch query cost grew {:.1}x while history grew {:.1}x; \
         streaming query cost grew {:.1}x\n\
         amortized per-event recluster cost: batch {:.3} us, streaming {:.3} us ({:.1}x)\n",
        last.batch_ms / first.batch_ms.max(f64::MIN_POSITIVE),
        last.events as f64 / first.events.max(1) as f64,
        last.stream_ms / first.stream_ms.max(f64::MIN_POSITIVE),
        last.batch_amortized_us,
        last.stream_amortized_us,
        last.batch_amortized_us / last.stream_amortized_us.max(f64::MIN_POSITIVE),
    ));
    let json = to_json(&samples, n_items);
    (out, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_checkpoints_cover_the_stream_and_agree() {
        let (events, n_items) = workload();
        // A prefix keeps the unit test quick; the binary runs the full
        // sweep (and the sweep itself asserts equivalence per checkpoint).
        let prefix = &events[..events.len() / 8];
        let samples = sweep(prefix, n_items, &ClusterParams::default());
        assert_eq!(samples.len(), CHECKPOINTS);
        assert_eq!(samples.last().unwrap().events, prefix.len());
        assert!(samples.windows(2).all(|w| w[0].events <= w[1].events));

        let json = to_json(&samples, n_items);
        assert!(json.contains("\"bench\": \"stream\""), "{json}");
        assert!(json.contains("\"stream_amortized_us\""), "{json}");
    }
}
