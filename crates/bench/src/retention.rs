//! Steady-state memory and disk under sustained ingest: retention off
//! versus on.
//!
//! The paper's Table I TTKVs grow to tens of megabytes over a two-month
//! trace; a fleet that serves users *indefinitely* must not grow without
//! bound. This sweep drives one fixed time-ordered mutation feed into two
//! live [`ShardedTtkv`]s — one keeping everything, one swept to a rolling
//! `frontier − retain` horizon with its WAL compacted to the same horizon
//! — and samples both footprints at every checkpoint, **asserting
//! post-horizon query equivalence each time** so a retention regression
//! cannot produce a plausible-looking table
//! (`cargo run -p ocasta-bench --bin retention --release`).
//!
//! The run also re-plays the repair-service scenario with the engine's
//! own [`RetentionPolicy`]: a pinned concurrent `RepairSession` under a
//! live sweeper must repair exactly like a no-retention run — the
//! `DESIGN.md §5.9` pin argument, bench-asserted.

use std::path::Path;

use ocasta::fleet::{fleet_machines, FleetRunConfig};
use ocasta::{
    PruneStats, RepairServiceConfig, RetentionPolicy, ShardedTtkv, TimeDelta, TimePrecision,
    Timestamp, TraceOp, Ttkv, Wal,
};

use crate::render_table;

/// Machines in the benchmark fleet.
pub const MACHINES: usize = 10;
/// Days of simulated usage per machine.
pub const DAYS: u64 = 60;
/// Trailing days the retention side keeps.
pub const RETAIN_DAYS: u64 = 10;
/// Footprint samples (and equivalence checks) along the feed.
pub const CHECKPOINTS: usize = 6;

/// One checkpoint of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Ingest frontier at the checkpoint, in fractional days.
    pub day: f64,
    /// Mutation events ingested so far.
    pub events: usize,
    /// Live store footprint with retention off, bytes.
    pub off_store_bytes: u64,
    /// Live store footprint with retention on, bytes.
    pub on_store_bytes: u64,
    /// WAL disk footprint (snapshot + log) with retention off, bytes.
    pub off_disk_bytes: u64,
    /// WAL disk footprint (snapshot + log) with retention on, bytes.
    pub on_disk_bytes: u64,
    /// Versions reclaimed so far on the retention side.
    pub pruned_versions: u64,
    /// Versions reclaimed by *this* checkpoint's sweep alone.
    pub sweep_pruned_versions: u64,
    /// Wall-clock cost of this checkpoint's incremental sweep (shard
    /// prune + layered WAL compaction), microseconds. The series this
    /// traces is the tentpole claim: it tracks `sweep_pruned_versions`,
    /// not live-state size.
    pub sweep_stall_us: u64,
    /// Wall-clock cost of a rebuild-style sweep over the *unbounded*
    /// side at the same horizon: one full WAL compaction (replay
    /// everything, rewrite the whole snapshot) plus one whole-store prune
    /// scan — the O(live state) cost shape both reclamation paths had
    /// before they went incremental. Grows with the run; the incremental
    /// series does not.
    pub rebuild_stall_us: u64,
}

/// The fixed time-ordered mutation feed every configuration ingests.
pub fn feed(machines: usize, days: u64) -> Vec<TraceOp> {
    let machines = fleet_machines(&FleetRunConfig {
        machines,
        days,
        seed: 99,
        apps: vec!["gedit".into(), "evolution".into(), "chrome".into()],
        ..FleetRunConfig::default()
    })
    .expect("catalog names are valid");
    let mut ops: Vec<TraceOp> = machines
        .iter()
        .flat_map(|machine| {
            machine
                .stream()
                .filter(|op| matches!(op, TraceOp::Mutation(_)))
        })
        .collect();
    ops.sort_by_key(|op| match op {
        TraceOp::Mutation(event) => event.timestamp,
        TraceOp::Reads(..) => Timestamp::EPOCH,
    });
    ops
}

/// The full result of one [`sweep`]: the per-checkpoint series plus the
/// *settled* disk footprint measured after one final rebase at the last
/// horizon.
///
/// The distinction matters because the sweeper rebases on a cadence
/// (every few sweeps): if the run happens to end mid-cycle, the retention
/// chain still carries overlapping delta layers and the last checkpoint's
/// disk reading is transiently inflated — it reflects where the rebase
/// clock stopped, not the steady state a long-lived deployment pays.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Per-checkpoint footprint samples, mid-run readings.
    pub samples: Vec<Sample>,
    /// Retention-side disk bytes after the final settling rebase.
    pub settled_on_disk_bytes: u64,
    /// Unbounded-side disk bytes at the same moment (already settled —
    /// the off side compacts to a single snapshot every checkpoint).
    pub settled_off_disk_bytes: u64,
    /// Wall-clock cost of the settling rebase, microseconds.
    pub settle_stall_us: u64,
    /// The settled retained store serialised as an `ocasta-ttkv binary v2`
    /// segment, bytes (the format snapshots and WAL layers actually use).
    pub snapshot_v2_bytes: u64,
    /// The same store serialised in the legacy text v1 format, bytes.
    pub snapshot_v1_bytes: u64,
    /// Time to load the v2 segment back into a store, microseconds.
    pub replay_v2_us: u64,
    /// Time to load the text v1 form back into a store, microseconds.
    pub replay_v1_us: u64,
}

/// Drives the feed into both configurations, sweeping the retention side
/// to `frontier − retain` after every chunk and compacting its WAL to the
/// same horizon. Off-side WALs are compacted too (unpruned), so the disk
/// comparison is snapshot-to-snapshot. After the last checkpoint the
/// retention chain is settled with one final rebase, so the outcome
/// carries both the mid-run and the steady-state disk footprint.
///
/// # Panics
///
/// Panics if any post-horizon query ever differs between the two sides,
/// if the retention side fails to stay below the unbounded side, or if
/// the settled store's binary v2 serialisation fails to round-trip or to
/// come in below its text v1 form (the format smoke assertion CI relies
/// on).
pub fn sweep(
    ops: &[TraceOp],
    retain: TimeDelta,
    checkpoints: usize,
    scratch: &Path,
) -> SweepOutcome {
    let precision = TimePrecision::Milliseconds;
    let off = ShardedTtkv::new(8);
    let on = ShardedTtkv::new(8);
    let _ = std::fs::remove_dir_all(scratch);
    let mut off_wal = Wal::open(scratch.join("off")).expect("scratch dir writable");
    let mut on_wal = Wal::open(scratch.join("on")).expect("scratch dir writable");
    // Delta layers overlap (each repeats the keys it touched), so a chain
    // left to grow can overtake a single compacted snapshot; rebase every
    // few sweeps as a long-running deployment would, so the disk series
    // reflects the steady state (and the stall series shows the
    // amortised rebase spikes honestly).
    on_wal.set_rebase_layers(3);
    let mut reclaimed = PruneStats::default();
    let mut samples = Vec::new();
    let mut last_horizon = Timestamp::EPOCH;

    for checkpoint in 1..=checkpoints {
        let done = ops.len() * checkpoint / checkpoints;
        let start = ops.len() * (checkpoint - 1) / checkpoints;
        let chunk = &ops[start..done];
        off.append_routed(chunk.to_vec());
        on.append_routed(chunk.to_vec());
        off_wal.append(chunk).expect("wal append");
        on_wal.append(chunk).expect("wal append");

        // This half of the bench measures footprint with no pinned
        // readers (the pin path is exercised end-to-end by
        // `pinned_session_equivalence`), so the horizon is unclamped.
        let frontier = on.last_mutation_time().expect("chunks are non-empty");
        let horizon = frontier.saturating_sub(retain);
        last_horizon = horizon;
        // The incremental sweep, timed end to end: in-place shard prune
        // plus layered (delta) WAL compaction.
        let sweep_started = std::time::Instant::now();
        let sweep_stats = on.prune_before(horizon);
        on_wal
            .compact_pruned(precision, horizon)
            .expect("wal compact");
        let sweep_stall_us = sweep_started.elapsed().as_micros() as u64;
        reclaimed.absorb(sweep_stats);

        // The O(live state) yardstick, first half: the unbounded side's
        // full compaction — replay everything, rewrite the whole snapshot
        // — which is exactly the cost shape `Wal::compact_pruned` had
        // before layering.
        let rebuild_started = std::time::Instant::now();
        off_wal.compact(precision).expect("wal compact");
        let mut rebuild_stall_us = rebuild_started.elapsed().as_micros() as u64;

        let off_snap = off.snapshot_store();
        let on_snap = on.snapshot_store();
        // Second half: a whole-store prune scan at the same horizon — the
        // cost shape the shard rebuild sweep had. Both halves grow with
        // the run; the incremental series does not.
        let mut rebuilt = off_snap.clone();
        let rebuild_started = std::time::Instant::now();
        rebuilt.prune_before(horizon);
        rebuild_stall_us += rebuild_started.elapsed().as_micros() as u64;

        // Incremental == rebuild == direct, exactly: however many staged
        // sweeps have run, the retained store must equal the unbounded
        // store pruned once at the current horizon.
        assert_eq!(
            on_snap, rebuilt,
            "retained store must equal one direct prune at {horizon}"
        );
        // The layered WAL chain must replay to the same store.
        assert_eq!(
            on_wal.replay(precision).expect("wal replay"),
            on_snap,
            "layered replay diverged at {horizon}"
        );
        // Post-horizon equivalence, at the horizon itself and the frontier.
        for key in off_snap.keys() {
            for probe in [horizon, frontier] {
                assert_eq!(
                    on_snap.value_at(key.as_str(), probe),
                    off_snap.value_at(key.as_str(), probe),
                    "{key} diverged at {probe} (horizon {horizon})"
                );
            }
        }
        assert_eq!(
            on_snap.stats().writes,
            off_snap.stats().writes,
            "lifetime counters must survive pruning"
        );

        samples.push(Sample {
            day: frontier.as_days(),
            events: done,
            off_store_bytes: off_snap.approx_bytes(),
            on_store_bytes: on_snap.approx_bytes(),
            off_disk_bytes: off_wal.log_bytes() + off_wal.snapshot_bytes(),
            on_disk_bytes: on_wal.log_bytes() + on_wal.snapshot_bytes(),
            pruned_versions: reclaimed.pruned_versions,
            sweep_pruned_versions: sweep_stats.pruned_versions,
            sweep_stall_us,
            rebuild_stall_us,
        });
    }
    // Settle the retention chain: the loop above leaves it wherever the
    // rebase cadence happened to stop, so the last checkpoint's disk
    // reading can carry un-rebased delta layers whose keys overlap the
    // base. One explicit rebase at the final horizon collapses the chain
    // to the footprint a long-lived deployment actually holds; both
    // readings are reported so the cadence-vs-steady-state gap stays
    // visible instead of skewing the headline ratio.
    let settle_started = std::time::Instant::now();
    on_wal
        .compact_pruned_rebased(precision, last_horizon)
        .expect("wal rebase");
    let settle_stall_us = settle_started.elapsed().as_micros() as u64;
    assert_eq!(
        on_wal.replay(precision).expect("wal replay"),
        on.snapshot_store(),
        "settling rebase diverged at {last_horizon}"
    );
    let settled_on_disk_bytes = on_wal.log_bytes() + on_wal.snapshot_bytes();
    let settled_off_disk_bytes = off_wal.log_bytes() + off_wal.snapshot_bytes();

    // Format yardstick: the settled retained store serialised both ways,
    // with a timed load of each. Binary v2 is the live format; text v1 is
    // the read-only import/export path — if v2 ever stops beating it on
    // the bench feed, the format regressed.
    let settled_store = on.snapshot_store();
    let mut v2 = Vec::new();
    settled_store.save(&mut v2).expect("serialise v2");
    let v1 = settled_store.save_to_string();
    let replay_started = std::time::Instant::now();
    let from_v2 = Ttkv::load(v2.as_slice()).expect("v2 segment loads");
    let replay_v2_us = replay_started.elapsed().as_micros() as u64;
    let replay_started = std::time::Instant::now();
    let from_v1 = Ttkv::load_from_str(&v1).expect("v1 text loads");
    let replay_v1_us = replay_started.elapsed().as_micros() as u64;
    assert_eq!(from_v2, settled_store, "v2 roundtrip diverged");
    assert_eq!(from_v1, settled_store, "v1 roundtrip diverged");
    assert!(
        v2.len() < v1.len(),
        "binary v2 snapshot must be smaller than text v1: {} vs {} bytes",
        v2.len(),
        v1.len()
    );
    std::fs::remove_dir_all(scratch).ok();

    let last = samples.last().expect("checkpoints > 0");
    assert!(
        last.on_store_bytes < last.off_store_bytes,
        "retention must bound memory: {} vs {}",
        last.on_store_bytes,
        last.off_store_bytes
    );
    assert!(
        settled_on_disk_bytes < settled_off_disk_bytes,
        "retention must bound disk once settled: {settled_on_disk_bytes} vs \
         {settled_off_disk_bytes}"
    );
    SweepOutcome {
        samples,
        settled_on_disk_bytes,
        settled_off_disk_bytes,
        settle_stall_us,
        snapshot_v2_bytes: v2.len() as u64,
        snapshot_v1_bytes: v1.len() as u64,
        replay_v2_us,
        replay_v1_us,
    }
}

/// The engine-integrated half: a repair-service run with the fleet
/// engine's own retention sweeper and a pinned concurrent session, against
/// the identical run with retention off. Returns the rendered comparison.
///
/// # Panics
///
/// Panics if any session's repair outcome differs between the two runs,
/// or if retention fails to shrink the pinned snapshot.
pub fn pinned_session_equivalence() -> String {
    let base = RepairServiceConfig {
        users: 2,
        scenario_ids: vec![13, 15],
        min_catalog_events: u64::MAX,
        start_bound_days: Some(3),
        ..RepairServiceConfig::default()
    };
    let mut fleet = base.fleet.clone();
    fleet.machines = 4;
    fleet.days = 16;
    fleet.engine.shards = 4;
    fleet.engine.ingest_threads = 2;
    let without = ocasta::run_repair_service(&RepairServiceConfig {
        fleet: fleet.clone(),
        ..base.clone()
    })
    .expect("service runs");
    fleet.engine.retention = Some(RetentionPolicy {
        retain: TimeDelta::from_days(5),
        min_interval: TimeDelta::from_days(1),
    });
    let with =
        ocasta::run_repair_service(&RepairServiceConfig { fleet, ..base }).expect("service runs");

    let retention = with.ingest.retention.expect("policy was set");
    assert!(retention.sweeps > 0, "the sweeper must have run");
    let horizon = retention.horizon.expect("swept");
    assert!(
        horizon <= with.session_pin,
        "sweeps may never pass the session pin"
    );
    assert!(
        with.snapshot_stats.approx_bytes < without.snapshot_stats.approx_bytes,
        "the pinned snapshot must shrink under retention"
    );
    for (a, b) in with.sessions.iter().zip(&without.sessions) {
        assert!(
            a.report.is_fixed() && b.report.is_fixed(),
            "sessions repair"
        );
        let (oa, ob) = (&a.report.outcome, &b.report.outcome);
        assert_eq!(
            oa.fix.as_ref().map(|f| f.version),
            ob.fix.as_ref().map(|f| f.version)
        );
        assert_eq!(oa.trials_to_fix, ob.trials_to_fix);
        assert_eq!(oa.total_trials, ob.total_trials);
        assert_eq!(oa.total_screenshots, ob.total_screenshots);
    }

    format!(
        "pinned-session equivalence: {} sessions fixed identically with \
         retention on (pin {}, final horizon {}, {}) — snapshot {} -> {} bytes\n",
        with.sessions.len(),
        with.session_pin,
        horizon,
        retention.reclaimed,
        without.snapshot_stats.approx_bytes,
        with.snapshot_stats.approx_bytes,
    )
}

/// Renders one sample row.
fn row(sample: &Sample) -> Vec<String> {
    vec![
        format!("{:.1}", sample.day),
        sample.events.to_string(),
        format!("{:.1}", sample.off_store_bytes as f64 / 1e3),
        format!("{:.1}", sample.on_store_bytes as f64 / 1e3),
        format!("{:.1}", sample.off_disk_bytes as f64 / 1e3),
        format!("{:.1}", sample.on_disk_bytes as f64 / 1e3),
        sample.sweep_pruned_versions.to_string(),
        sample.sweep_stall_us.to_string(),
        sample.rebuild_stall_us.to_string(),
    ]
}

/// Serialises the sweep as machine-readable JSON (the perf-trajectory
/// artifact CI accumulates as `BENCH_retention.json`).
///
/// `final_disk_ratio` is the *settled* reading (after the closing rebase);
/// `mid_run_disk_ratio` preserves the last checkpoint's raw reading, which
/// can sit above it when the run ends mid rebase-cycle.
pub fn to_json(outcome: &SweepOutcome, session_note: &str) -> String {
    let samples = &outcome.samples;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"retention\",\n  \"machines\": {MACHINES},\n  \"days\": {DAYS},\n  \
         \"retain_days\": {RETAIN_DAYS},\n  \"checkpoints\": [\n"
    ));
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"day\": {:.2}, \"events\": {}, \"off_store_bytes\": {}, \
             \"on_store_bytes\": {}, \"off_disk_bytes\": {}, \"on_disk_bytes\": {}, \
             \"pruned_versions\": {}, \"sweep_pruned_versions\": {}, \
             \"sweep_stall_us\": {}, \"rebuild_stall_us\": {}}}{}\n",
            s.day,
            s.events,
            s.off_store_bytes,
            s.on_store_bytes,
            s.off_disk_bytes,
            s.on_disk_bytes,
            s.pruned_versions,
            s.sweep_pruned_versions,
            s.sweep_stall_us,
            s.rebuild_stall_us,
            if i + 1 == samples.len() { "" } else { "," },
        ));
    }
    let last = samples.last().expect("checkpoints > 0");
    out.push_str(&format!(
        "  ],\n  \"final_store_ratio\": {:.4},\n  \"final_disk_ratio\": {:.4},\n  \
         \"mid_run_disk_ratio\": {:.4},\n  \"settle_stall_us\": {},\n  \
         \"median_sweep_stall_us\": {},\n  \"median_rebuild_stall_us\": {},\n  \
         \"final_rebuild_stall_us\": {},\n  \
         \"snapshot_v2_bytes\": {},\n  \"snapshot_v1_bytes\": {},\n  \
         \"replay_v2_us\": {},\n  \"replay_v1_us\": {},\n  \
         \"pinned_session_equivalence\": \"{}\"\n}}\n",
        last.on_store_bytes as f64 / last.off_store_bytes as f64,
        outcome.settled_on_disk_bytes as f64 / outcome.settled_off_disk_bytes as f64,
        last.on_disk_bytes as f64 / last.off_disk_bytes as f64,
        outcome.settle_stall_us,
        median(samples.iter().map(|s| s.sweep_stall_us)),
        median(samples.iter().map(|s| s.rebuild_stall_us)),
        last.rebuild_stall_us,
        outcome.snapshot_v2_bytes,
        outcome.snapshot_v1_bytes,
        outcome.replay_v2_us,
        outcome.replay_v1_us,
        session_note.trim().replace('"', "'"),
    ));
    out
}

/// Median of a series (0 for an empty one).
fn median(values: impl Iterator<Item = u64>) -> u64 {
    let mut sorted: Vec<u64> = values.collect();
    sorted.sort_unstable();
    sorted.get(sorted.len() / 2).copied().unwrap_or(0)
}

/// Runs the full sweep; returns `(human table, machine JSON)`.
pub fn run() -> (String, String) {
    let ops = feed(MACHINES, DAYS);
    let scratch =
        std::env::temp_dir().join(format!("ocasta-bench-retention-{}", std::process::id()));
    let outcome = sweep(
        &ops,
        TimeDelta::from_days(RETAIN_DAYS),
        CHECKPOINTS,
        &scratch,
    );
    let samples = &outcome.samples;

    let rows: Vec<Vec<String>> = samples.iter().map(row).collect();
    let mut out = format!(
        "Steady-state footprint under sustained ingest \
         ({MACHINES} machines x {DAYS} days, retain {RETAIN_DAYS} days, \
         {} events, {CHECKPOINTS} checkpoints)\n\n",
        ops.len(),
    );
    out.push_str(&render_table(
        &[
            "Day",
            "Events",
            "Store KB (off)",
            "Store KB (on)",
            "Disk KB (off)",
            "Disk KB (on)",
            "Swept",
            "Sweep us",
            "Rebuild us",
        ],
        &rows,
    ));
    let first = samples.first().expect("checkpoints > 0");
    let last = samples.last().expect("checkpoints > 0");
    out.push_str(&format!(
        "\nincremental == rebuild == direct (store + layered WAL replay) at every checkpoint: ok\n\
         unbounded store grew {:.1}x over the run; retained store grew {:.1}x \
         and ended at {:.0}% of unbounded ({:.0}% on disk once settled; {:.0}% \
         mid rebase-cycle, {} us to settle)\n",
        last.off_store_bytes as f64 / first.off_store_bytes.max(1) as f64,
        last.on_store_bytes as f64 / first.on_store_bytes.max(1) as f64,
        100.0 * last.on_store_bytes as f64 / last.off_store_bytes as f64,
        100.0 * outcome.settled_on_disk_bytes as f64 / outcome.settled_off_disk_bytes as f64,
        100.0 * last.on_disk_bytes as f64 / last.off_disk_bytes as f64,
        outcome.settle_stall_us,
    ));
    out.push_str(&format!(
        "per-sweep stall: incremental median {} us (rebase spikes included) \
         while the rebuild yardstick grew {} -> {} us with the run — sweep \
         cost tracks per-sweep reclaimed volume ({} versions at the last \
         checkpoint), not live-state size\n",
        median(samples.iter().map(|s| s.sweep_stall_us)),
        first.rebuild_stall_us,
        last.rebuild_stall_us,
        last.sweep_pruned_versions,
    ));
    out.push_str(&format!(
        "snapshot format: binary v2 {:.1} KB vs text v1 {:.1} KB \
         ({:.0}% of text), loads in {} us vs {} us\n",
        outcome.snapshot_v2_bytes as f64 / 1e3,
        outcome.snapshot_v1_bytes as f64 / 1e3,
        100.0 * outcome.snapshot_v2_bytes as f64 / outcome.snapshot_v1_bytes.max(1) as f64,
        outcome.replay_v2_us,
        outcome.replay_v1_us,
    ));
    let session_note = pinned_session_equivalence();
    out.push_str(&session_note);
    let json = to_json(&outcome, &session_note);
    (out, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_asserts_equivalence_and_boundedness_on_a_small_feed() {
        // A small fleet keeps the unit test quick; the binary runs the
        // full sweep (whose checkpoints assert the same invariants).
        let ops = feed(3, 24);
        let scratch = std::env::temp_dir().join(format!(
            "ocasta-bench-retention-test-{}",
            std::process::id()
        ));
        let outcome = sweep(&ops, TimeDelta::from_days(4), 4, &scratch);
        let samples = &outcome.samples;
        assert_eq!(samples.len(), 4);
        assert!(samples.windows(2).all(|w| w[0].events <= w[1].events));
        let last = samples.last().unwrap();
        assert!(last.pruned_versions > 0);
        assert!(last.on_store_bytes < last.off_store_bytes);
        // The settled reading never exceeds the mid-run one: the closing
        // rebase can only collapse overlapping delta layers, not add any.
        assert!(outcome.settled_on_disk_bytes <= last.on_disk_bytes);
        assert!(outcome.settled_on_disk_bytes < outcome.settled_off_disk_bytes);

        // Binary v2 must beat the text form even on the small feed, and
        // both loads must have been timed.
        assert!(outcome.snapshot_v2_bytes < outcome.snapshot_v1_bytes);
        assert!(outcome.snapshot_v2_bytes > 0);

        let json = to_json(&outcome, "ok");
        assert!(json.contains("\"bench\": \"retention\""), "{json}");
        assert!(json.contains("\"final_store_ratio\""), "{json}");
        assert!(json.contains("\"mid_run_disk_ratio\""), "{json}");
        assert!(json.contains("\"snapshot_v2_bytes\""), "{json}");
        assert!(json.contains("\"replay_v2_us\""), "{json}");
        assert_eq!(json.matches("{\"day\"").count(), 4, "{json}");
    }
}
