//! Rollback-search cost versus history size and trial-executor threads.
//!
//! The repair search's cost is dominated by trial execution: every
//! candidate rollback materialises a sandbox over the full configuration
//! and renders it. The sweep grows one scenario's recorded history
//! (`ocasta repair`'s inputs get bigger as a deployment ages — more
//! transactions per cluster means more candidates) and runs the search to
//! exhaustion sequentially and with 2/4 concurrent trial executors, via
//! `cargo run -p ocasta-bench --bin repair --release`.
//!
//! Every parallel outcome is asserted equal to the sequential one — the
//! sweep doubles as an equivalence check (the same invariant the property
//! suite in `crates/repair/tests/prop.rs` covers on random histories), so
//! a regression cannot produce a plausible-looking table.
//!
//! A second sweep times *session open*: a repair session pins a
//! consistent point-in-time store before searching, and since the
//! sealed-segment refactor that pin is O(shards) (`pin_epoch`) instead of
//! O(live state) (the clone-under-lock yardstick, kept for comparison and
//! asserted equivalent at every size). The `session_open_us` figure is
//! gated against `baselines/BENCH_repair.json` by `bench-compare`.

use std::time::Instant;

use ocasta::{parallel_search, prepare_store, search, ScenarioConfig};
use ocasta::{Ocasta, SearchConfig, SearchOutcome, TimeDelta};

use crate::render_table;

/// The Table III error the sweep repairs (Chrome's missing bookmark bar —
/// a long trace with steady churn).
pub const SCENARIO_ID: usize = 13;
/// Trace lengths (days) the history grows through. (The shortest trace
/// must exceed the scenario's 14-day injection age, or the injection
/// saturates to the epoch and rolls back onto itself.)
pub const DAYS: [u64; 4] = [21, 42, 63, 84];
/// Trial-executor thread counts the sweep compares.
pub const THREADS: [usize; 2] = [2, 4];
/// Live-state sizes (mutations) the session-open sweep grows through.
pub const SESSION_STATE_OPS: [usize; 3] = [10_000, 40_000, 160_000];
/// Sessions opened (and timed) per state size.
pub const SESSION_OPENS: usize = 64;

/// One row of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Trace length in days.
    pub days: u64,
    /// Mutation events in the prepared store.
    pub events: u64,
    /// Trials the exhaustive search executed.
    pub trials: usize,
    /// Sequential search wall-clock, milliseconds.
    pub sequential_ms: f64,
    /// Parallel search wall-clock per thread count, milliseconds
    /// (same order as [`THREADS`]).
    pub parallel_ms: Vec<f64>,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if any parallel outcome differs from the sequential one.
pub fn sweep(days: &[u64], threads: &[usize]) -> Vec<Sample> {
    let all = ocasta::scenarios();
    let base = all
        .iter()
        .find(|s| s.id == SCENARIO_ID)
        .expect("scenario exists");
    let mut samples = Vec::new();
    for &d in days {
        let mut scenario = base.clone();
        scenario.trace_days = d;
        let config = ScenarioConfig {
            // Search the whole history so cost scales with its size.
            start_bound_days: None,
            ..ScenarioConfig::default()
        };
        let (store, _inject_at) = prepare_store(&scenario, &config);
        let clusters = Ocasta::new(config.params).cluster_store(&store);
        let search_config = SearchConfig {
            window: TimeDelta::from_millis(config.params.window_ms),
            trial_cost: scenario.trial_cost,
            ..SearchConfig::default()
        };
        let trial = scenario.trial();
        let oracle = scenario.oracle();

        let started = Instant::now();
        let sequential = search(&store, clusters.clusters(), &trial, &oracle, &search_config);
        let sequential_ms = started.elapsed().as_secs_f64() * 1e3;
        assert!(sequential.is_fixed(), "scenario must be repairable");

        let mut parallel_ms = Vec::new();
        for &n in threads {
            let started = Instant::now();
            let parallel = parallel_search(
                &store,
                clusters.clusters(),
                &trial,
                &oracle,
                &search_config,
                n,
            );
            parallel_ms.push(started.elapsed().as_secs_f64() * 1e3);
            assert_outcomes_equal(&sequential, &parallel, d, n);
        }

        samples.push(Sample {
            days: d,
            events: store.stats().writes + store.stats().deletes,
            trials: sequential.total_trials,
            sequential_ms,
            parallel_ms,
        });
    }
    samples
}

fn assert_outcomes_equal(sequential: &SearchOutcome, parallel: &SearchOutcome, d: u64, n: usize) {
    assert_eq!(
        sequential, parallel,
        "parallel({n}) != sequential at {d} days"
    );
}

/// One session-open measurement at one live-state size: the epoch-pin
/// open (`pin_epoch`, O(shards)) next to the clone-under-lock yardstick
/// (`snapshot_store_cloned`, O(live state)) that repair sessions paid
/// before epoch pins.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSample {
    /// Mutations resident in the sharded store.
    pub ops: usize,
    /// Median epoch-pin session open, microseconds.
    pub pin_us: f64,
    /// Median clone-under-lock open, microseconds.
    pub clone_us: f64,
}

/// Measures repair-session open latency against live-state size.
///
/// A repair session needs a consistent point-in-time store. The old path
/// deep-cloned every shard under its lock (cost grows with live state);
/// the epoch-pin path grabs `Arc`s to the sealed segments plus a small
/// tail copy (cost grows with shard count only). The sweep times both on
/// the same quiesced store, and double-checks at every size that the
/// pinned epoch materializes into *exactly* the cloned store.
///
/// # Panics
///
/// Panics if an epoch pin and the clone yardstick ever disagree.
pub fn session_open_sweep(sizes: &[usize], opens: usize) -> Vec<SessionSample> {
    use ocasta::{AccessEvent, ShardedTtkv, Timestamp, TraceOp, Value};
    let mut samples = Vec::new();
    for &ops in sizes {
        let sharded = ShardedTtkv::new(8);
        let batch: Vec<TraceOp> = (0..ops)
            .map(|i| {
                TraceOp::Mutation(AccessEvent::write(
                    Timestamp::from_millis(i as u64),
                    format!("app/k{:05}", i % 4096),
                    Value::from(i as i64),
                ))
            })
            .collect();
        sharded.append_routed(batch);

        let mut pin_us: Vec<f64> = (0..opens)
            .map(|_| {
                let started = Instant::now();
                let pin = sharded.pin_epoch();
                let us = started.elapsed().as_secs_f64() * 1e6;
                drop(pin);
                us
            })
            .collect();
        let mut clone_us: Vec<f64> = (0..opens)
            .map(|_| {
                let started = Instant::now();
                let store = sharded.snapshot_store_cloned();
                let us = started.elapsed().as_secs_f64() * 1e6;
                drop(store);
                us
            })
            .collect();
        assert_eq!(
            sharded.pin_epoch().materialize(),
            sharded.snapshot_store_cloned(),
            "epoch pin and clone yardstick disagree at {ops} ops"
        );
        samples.push(SessionSample {
            ops,
            pin_us: median(&mut pin_us),
            clone_us: median(&mut clone_us),
        });
    }
    samples
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Serialises the sweep as machine-readable JSON (`BENCH_repair.json`),
/// flat top-level numbers for `bench-compare` to gate on. All figures come
/// from the largest history (the last sample), where cost differences are
/// most visible.
pub fn to_json(samples: &[Sample], sessions: &[SessionSample]) -> String {
    let last = samples.last().expect("sweep is non-empty");
    let open = sessions.last().expect("session sweep is non-empty");
    let best_parallel = last
        .parallel_ms
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    format!(
        "{{\n  \"bench\": \"repair\",\n  \"scenario_id\": {SCENARIO_ID},\n  \"days\": {},\n  \
         \"events\": {},\n  \"trials\": {},\n  \"sequential_ms\": {:.3},\n  \
         \"best_parallel_ms\": {:.3},\n  \"session_state_ops\": {},\n  \
         \"session_open_us\": {:.3},\n  \"session_clone_us\": {:.3}\n}}\n",
        last.days,
        last.events,
        last.trials,
        last.sequential_ms,
        best_parallel,
        open.ops,
        open.pin_us,
        open.clone_us,
    )
}

/// Renders the sweep and the verdict. Returns `(human table, machine
/// JSON)`.
pub fn run() -> (String, String) {
    let samples = sweep(&DAYS, &THREADS);

    let mut headers = vec!["Days", "Events", "Trials", "Seq ms"];
    let thread_headers: Vec<String> = THREADS.iter().map(|n| format!("{n}thr ms")).collect();
    headers.extend(thread_headers.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let mut row = vec![
                s.days.to_string(),
                s.events.to_string(),
                s.trials.to_string(),
                format!("{:.2}", s.sequential_ms),
            ];
            row.extend(s.parallel_ms.iter().map(|ms| format!("{ms:.2}")));
            row
        })
        .collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "Rollback-search cost vs history size and trial threads \
         (error #{SCENARIO_ID}, exhaustive search, {cores} core(s))\n\n",
    );
    out.push_str(&render_table(&headers, &rows));

    let first = samples.first().expect("sweep is non-empty");
    let last = samples.last().expect("sweep is non-empty");
    let best_parallel = last
        .parallel_ms
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "\nparallel == sequential at every size and thread count: ok\n\
         search cost grew {:.1}x while history grew {:.1}x ({} -> {} trials)\n\
         at {} days: sequential {:.2} ms, best parallel {:.2} ms ({:.2}x)\n",
        last.sequential_ms / first.sequential_ms.max(f64::MIN_POSITIVE),
        last.events as f64 / first.events.max(1) as f64,
        first.trials,
        last.trials,
        last.days,
        last.sequential_ms,
        best_parallel,
        last.sequential_ms / best_parallel.max(f64::MIN_POSITIVE),
    ));
    if cores == 1 {
        out.push_str(
            "note: single-core host — thread scaling cannot appear; the \
             table still verifies outcome equivalence per configuration\n",
        );
    }

    // The compute above renders screenshots in microseconds; a *real* trial
    // replays a GUI script in a sandbox (Table IV charges seconds per
    // trial). At that cost the wave-parallel search divides user-facing
    // wall-clock by the executor count:
    let all = ocasta::scenarios();
    let trial_cost = all
        .iter()
        .find(|s| s.id == SCENARIO_ID)
        .expect("scenario exists")
        .trial_cost;
    let max_threads = THREADS.iter().copied().max().unwrap_or(1);
    let modeled_seq = trial_cost.scale(last.trials as u64);
    let modeled_par = trial_cost.scale(last.trials.div_ceil(max_threads) as u64);
    out.push_str(&format!(
        "modeled exhaustive repair at {} days ({}ms/trial, Table IV): \
         sequential {}, {} executors {}\n",
        last.days,
        trial_cost.as_millis(),
        modeled_seq.as_mmss(),
        max_threads,
        modeled_par.as_mmss(),
    ));

    // Session-open latency: the epoch-pin open must stay flat while the
    // clone-under-lock yardstick grows with live state.
    let sessions = session_open_sweep(&SESSION_STATE_OPS, SESSION_OPENS);
    out.push_str(&format!(
        "\nRepair-session open vs live state (8 shards, {SESSION_OPENS} opens, medians)\n\n"
    ));
    let session_rows: Vec<Vec<String>> = sessions
        .iter()
        .map(|s| {
            vec![
                s.ops.to_string(),
                format!("{:.1}", s.pin_us),
                format!("{:.1}", s.clone_us),
                format!("{:.1}x", s.clone_us / s.pin_us.max(f64::MIN_POSITIVE)),
            ]
        })
        .collect();
    out.push_str(&render_table(
        &["Live ops", "Pin us", "Clone us", "Clone/Pin"],
        &session_rows,
    ));
    let (first_s, last_s) = (
        sessions.first().expect("session sweep is non-empty"),
        sessions.last().expect("session sweep is non-empty"),
    );
    out.push_str(&format!(
        "\nepoch-pin open: {:.1} us -> {:.1} us across a {:.0}x state growth \
         (clone yardstick: {:.1} us -> {:.1} us, {:.1}x)\n",
        first_s.pin_us,
        last_s.pin_us,
        last_s.ops as f64 / first_s.ops.max(1) as f64,
        first_s.clone_us,
        last_s.clone_us,
        last_s.clone_us / first_s.clone_us.max(f64::MIN_POSITIVE),
    ));
    let json = to_json(&samples, &sessions);
    (out, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_asserts_equivalence_and_covers_sizes() {
        // A short prefix keeps the unit test quick; the binary runs the
        // full sweep (equivalence asserted inside `sweep` either way).
        let samples = sweep(&[21, 28], &[2]);
        assert_eq!(samples.len(), 2);
        assert!(samples[0].events < samples[1].events);
        assert!(samples.iter().all(|s| s.trials > 0));
        assert!(samples.iter().all(|s| s.parallel_ms.len() == 1));

        let sessions = session_open_sweep(&[2_000, 8_000], 9);
        assert_eq!(sessions.len(), 2);
        assert!(sessions.iter().all(|s| s.pin_us > 0.0 && s.clone_us > 0.0));

        let json = to_json(&samples, &sessions);
        assert!(json.contains("\"bench\": \"repair\""), "{json}");
        assert!(json.contains("\"best_parallel_ms\""), "{json}");
        assert!(json.contains("\"session_open_us\""), "{json}");
        assert!(json.contains("\"session_clone_us\""), "{json}");
    }
}
