//! Figure 3 — sensitivity of average cluster size to the window size and
//! the clustering threshold.

use ocasta::{all_models, ClusterParams, Ocasta, PartitionStats, TimePrecision, Ttkv};

use crate::render_series;

/// Days of usage generated per application for the sensitivity sweeps.
pub const EVAL_DAYS: u64 = 45;

/// Generates each application's store once (the sweeps reuse them).
pub fn stores() -> Vec<Ttkv> {
    let out = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, model) in all_models().into_iter().enumerate() {
            let out = &out;
            scope.spawn(move || {
                let trace = model.generate_trace(EVAL_DAYS, 2000 + i as u64);
                out.lock()
                    .unwrap()
                    .push(trace.replay(TimePrecision::Seconds));
            });
        }
    });
    out.into_inner().unwrap()
}

/// Mean multi-cluster size across all apps for one parameter choice.
fn mean_size(stores: &[Ttkv], params: &ClusterParams) -> f64 {
    let engine = Ocasta::new(*params);
    let mut items_in_multi = 0usize;
    let mut multi = 0usize;
    for store in stores {
        let stats: PartitionStats = engine.cluster_store(store).stats();
        items_in_multi += stats.items_in_multi;
        multi += stats.multi_clusters;
    }
    if multi == 0 {
        0.0
    } else {
        items_in_multi as f64 / multi as f64
    }
}

/// Figure 3a: average multi-cluster size vs window size (seconds). Window 0
/// groups only identical (second-quantised) timestamps — the paper's
/// left-edge artifact.
pub fn by_window(stores: &[Ttkv]) -> Vec<(f64, f64)> {
    [0u64, 1, 2, 5, 10, 30, 60, 120, 300, 600]
        .iter()
        .map(|&secs| {
            let params = ClusterParams {
                window_ms: secs * 1000,
                ..ClusterParams::default()
            };
            (secs as f64, mean_size(stores, &params))
        })
        .collect()
}

/// Figure 3b: average multi-cluster size vs correlation threshold.
pub fn by_threshold(stores: &[Ttkv]) -> Vec<(f64, f64)> {
    [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]
        .iter()
        .map(|&threshold| {
            let params = ClusterParams {
                correlation_threshold: threshold,
                ..ClusterParams::default()
            };
            (threshold, mean_size(stores, &params))
        })
        .collect()
}

/// Renders both panels.
pub fn run() -> String {
    let stores = stores();
    let mut out = String::from("Figure 3: Average cluster size\n\n");
    out.push_str(&render_series(
        "3a avg multi-cluster size vs window size (s)",
        &by_window(&stores),
    ));
    out.push('\n');
    out.push_str(&render_series(
        "3b avg multi-cluster size vs clustering threshold",
        &by_threshold(&stores),
    ));
    out
}
