//! Fleet ingestion throughput: events/sec versus ingest threads and shard
//! count, on one fixed synthetic fleet.
//!
//! This is the benchmark behind the fleet subsystem's existence claim: the
//! sharded, batched, multi-producer pipeline must beat single-threaded
//! ingestion on the same workload, and the table makes the scaling visible
//! (`cargo run -p ocasta-bench --bin fleet --release`).

use ocasta::fleet::{fleet_machines, FleetRunConfig};
use ocasta::{fleet_ingest, FleetConfig, KeyPlacement, MachineSpec, TimePrecision};

use crate::render_table;

/// Machines in the benchmark fleet (the paper's deployment size).
pub const MACHINES: usize = 29;
/// Days of simulated usage per machine.
pub const DAYS: u64 = 40;

/// The fixed fleet every configuration ingests.
pub fn machines() -> Vec<MachineSpec> {
    fleet_machines(&FleetRunConfig {
        machines: MACHINES,
        days: DAYS,
        seed: 77,
        // A few real application models keeps the event mix representative
        // without making the benchmark minutes long.
        apps: vec!["gedit".into(), "evolution".into(), "chrome".into()],
        ..FleetRunConfig::default()
    })
    .expect("catalog names are valid")
}

/// The pre-fleet status quo: materialise every machine's whole trace
/// in memory, replay it into a private store, merge stores one by one.
/// Returns (mutations, seconds).
pub fn baseline(machines: &[MachineSpec]) -> (u64, f64) {
    use ocasta::{generate, GeneratorConfig, Ttkv};
    let started = std::time::Instant::now();
    let mut merged = Ttkv::new();
    for machine in machines {
        let config = GeneratorConfig::new(machine.name.clone(), machine.days, machine.seed);
        let trace = generate(&config, &machine.specs);
        merged.absorb(trace.replay(TimePrecision::Seconds));
    }
    let stats = merged.stats();
    (
        stats.writes + stats.deletes,
        started.elapsed().as_secs_f64(),
    )
}

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Ingest worker threads.
    pub threads: usize,
    /// TTKV stripe locks.
    pub shards: usize,
    /// Mutations ingested.
    pub mutations: u64,
    /// Ingestion throughput, events/second.
    pub events_per_sec: f64,
    /// Total wall-clock including the shard merge, seconds.
    pub total_secs: f64,
}

/// Ingests the fixed fleet once per (threads, shards) configuration.
pub fn sweep(thread_counts: &[usize], shard_counts: &[usize]) -> Vec<Sample> {
    let machines = machines();
    let mut samples = Vec::new();
    for &shards in shard_counts {
        for &threads in thread_counts {
            let config = FleetConfig {
                shards,
                ingest_threads: threads,
                batch_size: 512,
                precision: TimePrecision::Seconds,
                placement: KeyPlacement::Merged,
                retention: None,
                ..FleetConfig::default()
            };
            let (_, report) = fleet_ingest(&machines, &config);
            samples.push(Sample {
                threads,
                shards,
                mutations: report.mutations,
                events_per_sec: report.events_per_sec(),
                total_secs: (report.ingest_elapsed + report.merge_elapsed).as_secs_f64(),
            });
        }
    }
    samples
}

/// Serialises the sweep as machine-readable JSON (`BENCH_fleet.json`),
/// flat top-level numbers for `bench-compare` to gate on.
pub fn to_json(samples: &[Sample], baseline_rate: f64, baseline_secs: f64) -> String {
    let best_total = samples
        .iter()
        .map(|s| s.total_secs)
        .fold(f64::INFINITY, f64::min);
    format!(
        "{{\n  \"bench\": \"fleet\",\n  \"machines\": {MACHINES},\n  \"days\": {DAYS},\n  \
         \"mutations\": {},\n  \"baseline_events_per_sec\": {:.1},\n  \
         \"best_events_per_sec\": {:.1},\n  \"single_thread_events_per_sec\": {:.1},\n  \
         \"best_total_ms\": {:.3},\n  \"baseline_total_ms\": {:.3}\n}}\n",
        samples.first().map_or(0, |s| s.mutations),
        baseline_rate,
        best_rate(samples, |_| true),
        best_rate(samples, |s| s.threads == 1),
        best_total * 1e3,
        baseline_secs * 1e3,
    )
}

/// Renders the baseline measurement and the sweep, plus a verdict.
/// Returns `(human table, machine JSON)`.
pub fn run() -> (String, String) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let machines = machines();
    let (baseline_mutations, baseline_secs) = baseline(&machines);
    let baseline_rate = baseline_mutations as f64 / baseline_secs.max(f64::MIN_POSITIVE);

    let thread_counts = [1usize, 2, 4, 8, 16];
    let shard_counts = [1usize, 4, 16];
    let samples = sweep(&thread_counts, &shard_counts);

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.shards.to_string(),
                s.threads.to_string(),
                s.mutations.to_string(),
                format!("{:.0}", s.events_per_sec),
                format!("{:.1}", s.total_secs * 1e3),
            ]
        })
        .collect();
    let mut out = format!(
        "Fleet ingestion throughput ({MACHINES} machines x {DAYS} days, {cores} core(s))\n\n\
         baseline (materialise whole traces, replay, merge): \
         {baseline_mutations} mutations in {:.1} ms = {baseline_rate:.0} events/s\n\n",
        baseline_secs * 1e3,
    );
    out.push_str(&render_table(
        &["Shards", "Threads", "Mutations", "Events/s", "Total ms"],
        &rows,
    ));

    let best_total = samples
        .iter()
        .map(|s| s.total_secs)
        .fold(f64::INFINITY, f64::min);
    let single = best_rate(&samples, |s| s.threads == 1);
    let multi = best_rate(&samples, |s| s.threads > 1);
    out.push_str(&format!(
        "\nstreaming sharded pipeline vs materialise-and-replay baseline: {:.2}x \
         (best pipeline total {:.1} ms vs baseline {:.1} ms)\n",
        baseline_secs / best_total.max(f64::MIN_POSITIVE),
        best_total * 1e3,
        baseline_secs * 1e3,
    ));
    out.push_str(&format!(
        "best single-threaded: {single:.0} events/s; best multi-threaded: {multi:.0} events/s \
         ({:.2}x; thread scaling needs >1 core — this host has {cores})\n",
        multi / single.max(f64::MIN_POSITIVE),
    ));
    let json = to_json(&samples, baseline_rate, baseline_secs);
    (out, json)
}

fn best_rate(samples: &[Sample], pick: impl Fn(&Sample) -> bool) -> f64 {
    samples
        .iter()
        .filter(|s| pick(s))
        .map(|s| s.events_per_sec)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_consistent_across_configurations() {
        let samples = sweep(&[1, 2], &[1, 8]);
        assert_eq!(samples.len(), 4);
        let mutations = samples[0].mutations;
        assert!(mutations > 0);
        assert!(
            samples.iter().all(|s| s.mutations == mutations),
            "same fleet ⇒ same mutation count: {samples:?}"
        );

        let json = to_json(&samples, 1000.0, 0.5);
        assert!(json.contains("\"bench\": \"fleet\""), "{json}");
        assert!(json.contains("\"best_events_per_sec\""), "{json}");
        assert!(json.contains("\"single_thread_events_per_sec\""), "{json}");
    }
}
