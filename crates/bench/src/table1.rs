//! Table I — summary of trace statistics for the nine machines/users.

use ocasta::{
    all_models, generate, GeneratorConfig, OsFlavor, TimePrecision, TtkvStats, WorkloadSpec,
    TABLE1_PROFILES,
};

use crate::render_table;

/// One regenerated Table I row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Machine/user name.
    pub name: String,
    /// Deployment days.
    pub days: u64,
    /// Measured reads.
    pub reads: u64,
    /// Measured writes (including deletions, as the paper counts
    /// modifications).
    pub writes: u64,
    /// Distinct keys.
    pub keys: u64,
    /// Approximate TTKV size in bytes.
    pub ttkv_bytes: u64,
    /// Published reads (for the comparison column).
    pub paper_reads: u64,
    /// Published writes.
    pub paper_writes: u64,
    /// Published key count.
    pub paper_keys: u64,
}

/// The application mix for one machine. Windows machines run the full
/// Windows catalog; the Linux users' TTKVs "only store keys from the
/// application-file logger" for Linux-2/3/4 (Table I's caption), which the
/// Table III cases identify as Chrome (Linux-2) and Acrobat (Linux-3/4).
fn specs_for(machine: &str, os: OsFlavor) -> Vec<WorkloadSpec> {
    let wanted: Option<&[&str]> = match machine {
        "Linux-2" => Some(&["chrome"]),
        "Linux-3" | "Linux-4" => Some(&["acrobat"]),
        _ => None,
    };
    all_models()
        .into_iter()
        .filter(|m| m.os == os)
        .filter(|m| wanted.is_none_or(|names| names.contains(&m.name)))
        .map(|m| m.spec)
        .collect()
}

/// Generates all nine machines and computes their statistics.
pub fn rows() -> Vec<Row> {
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for profile in &TABLE1_PROFILES {
            let results = &results;
            scope.spawn(move || {
                let mut specs = specs_for(profile.name, profile.os);
                profile.calibrate(&mut specs);
                let config = GeneratorConfig::new(profile.name, profile.days, profile.seed);
                let trace = generate(&config, &specs);
                let stats = trace.stats();
                let store = trace.replay(TimePrecision::Seconds);
                results.lock().unwrap().push(Row {
                    name: profile.name.to_owned(),
                    days: profile.days,
                    reads: stats.reads,
                    writes: stats.writes + stats.deletes,
                    keys: stats.keys,
                    ttkv_bytes: store.approx_bytes(),
                    paper_reads: profile.target_reads,
                    paper_writes: profile.target_writes,
                    paper_keys: profile.target_keys,
                });
            });
        }
    });
    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|r| {
        TABLE1_PROFILES
            .iter()
            .position(|p| p.name == r.name)
            .unwrap_or(usize::MAX)
    });
    rows
}

/// Renders the paper-shaped table with measured-vs-published columns.
pub fn run() -> String {
    let rows = rows();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.days.to_string(),
                TtkvStats::humanize(r.reads),
                TtkvStats::humanize(r.writes),
                r.keys.to_string(),
                TtkvStats::humanize_bytes(r.ttkv_bytes),
                TtkvStats::humanize(r.paper_reads),
                TtkvStats::humanize(r.paper_writes),
                r.paper_keys.to_string(),
            ]
        })
        .collect();
    let mut out = String::from("Table I: Summary of trace statistics (measured | paper)\n\n");
    out.push_str(&render_table(
        &[
            "Name",
            "Days",
            "Reads",
            "Writes",
            "# Keys",
            "TTKV Size",
            "Reads(p)",
            "Writes(p)",
            "# Keys(p)",
        ],
        &body,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_machine_specs_split_the_catalog() {
        assert_eq!(specs_for("Windows 7", OsFlavor::Windows).len(), 6);
        assert_eq!(specs_for("Linux-1", OsFlavor::Linux).len(), 5);
        assert_eq!(specs_for("Linux-2", OsFlavor::Linux).len(), 1);
        assert_eq!(specs_for("Linux-3", OsFlavor::Linux).len(), 1);
    }
}
