//! Figure 2 — DFS vs BFS trial counts under three sweeps:
//! (a) injection age, (b) spurious writes, (c) search time bound.

use ocasta::{run_scenario, ClusterParams, ScenarioConfig, ScenarioOutcome, SearchStrategy};

use crate::render_series;

/// Runs every scenario under `make_config` and returns the mean
/// trials-to-fix across the fixed cases.
fn mean_trials(make_config: impl Fn(&ocasta::ErrorScenario) -> ScenarioConfig + Sync) -> f64 {
    let outcomes = std::sync::Mutex::new(Vec::<ScenarioOutcome>::new());
    std::thread::scope(|scope| {
        for scenario in ocasta::scenarios() {
            let outcomes = &outcomes;
            let make_config = &make_config;
            scope.spawn(move || {
                let config = make_config(&scenario);
                let outcome = run_scenario(&scenario, &config);
                outcomes.lock().unwrap().push(outcome);
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap();
    let trials: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.search.trials_to_fix.map(|n| n as f64))
        .collect();
    trials.iter().sum::<f64>() / trials.len().max(1) as f64
}

fn base_config(scenario: &ocasta::ErrorScenario, strategy: SearchStrategy) -> ScenarioConfig {
    let params = if scenario.needs_tuning {
        ScenarioConfig::tuned_for(scenario)
    } else {
        ClusterParams::default()
    };
    ScenarioConfig {
        strategy,
        params,
        ..ScenarioConfig::default()
    }
}

/// Figure 2a: mean trials vs injection age (days before the end of the
/// trace), per strategy. The search bound stays at 14 days.
pub fn by_injection_age(strategy: SearchStrategy) -> Vec<(f64, f64)> {
    [1u64, 2, 4, 6, 8, 10, 12, 14]
        .iter()
        .map(|&age| {
            let mean = mean_trials(|s| ScenarioConfig {
                injection_age_days: age,
                start_bound_days: Some(14),
                ..base_config(s, strategy)
            });
            (age as f64, mean)
        })
        .collect()
}

/// Figure 2b: mean trials vs number of spurious fix attempts after the
/// injected error.
pub fn by_spurious_writes(strategy: SearchStrategy) -> Vec<(f64, f64)> {
    (0u64..=2)
        .map(|spurious| {
            let mean = mean_trials(|s| ScenarioConfig {
                spurious_attempts: spurious,
                ..base_config(s, strategy)
            });
            (spurious as f64, mean)
        })
        .collect()
}

/// Figure 2c: mean trials for an *exhaustive* search as the user's start
/// bound reaches further into the past. (The y-axis counts all trials in
/// range, matching the roughly linear growth the paper reports.)
pub fn by_time_bound(strategy: SearchStrategy) -> Vec<(f64, f64)> {
    [10u64, 20, 30, 40, 50, 60, 70, 80]
        .iter()
        .map(|&bound| {
            let outcomes = std::sync::Mutex::new(Vec::<f64>::new());
            std::thread::scope(|scope| {
                for scenario in ocasta::scenarios() {
                    let outcomes = &outcomes;
                    scope.spawn(move || {
                        let config = ScenarioConfig {
                            start_bound_days: Some(bound),
                            ..base_config(&scenario, strategy)
                        };
                        let outcome = run_scenario(&scenario, &config);
                        outcomes
                            .lock()
                            .unwrap()
                            .push(outcome.search.total_trials as f64);
                    });
                }
            });
            let totals = outcomes.into_inner().unwrap();
            let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
            (bound as f64, mean)
        })
        .collect()
}

/// Renders all three panels for both strategies.
pub fn run() -> String {
    let mut out = String::from("Figure 2: Comparison between DFS and BFS\n\n");
    for strategy in [SearchStrategy::Bfs, SearchStrategy::Dfs] {
        out.push_str(&render_series(
            &format!("2a mean trials vs injection age — {}", strategy.name()),
            &by_injection_age(strategy),
        ));
        out.push('\n');
    }
    for strategy in [SearchStrategy::Bfs, SearchStrategy::Dfs] {
        out.push_str(&render_series(
            &format!("2b mean trials vs spurious writes — {}", strategy.name()),
            &by_spurious_writes(strategy),
        ));
        out.push('\n');
    }
    for strategy in [SearchStrategy::Bfs, SearchStrategy::Dfs] {
        out.push_str(&render_series(
            &format!(
                "2c mean exhaustive trials vs time bound — {}",
                strategy.name()
            ),
            &by_time_bound(strategy),
        ));
        out.push('\n');
    }
    out
}
