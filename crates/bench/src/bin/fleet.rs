//! Fleet ingestion throughput sweep. Run with --release.

fn main() {
    print!("{}", ocasta_bench::fleet::run());
}
