//! Fleet ingestion throughput sweep. Run with --release.
//!
//! Prints the human-readable table and writes `BENCH_fleet.json` to the
//! current directory — the machine-readable artifact `bench-compare`
//! gates against the tracked baseline.

fn main() {
    let (table, json) = ocasta_bench::fleet::run();
    print!("{table}");
    match std::fs::write("BENCH_fleet.json", &json) {
        Ok(()) => println!("wrote BENCH_fleet.json"),
        Err(e) => eprintln!("could not write BENCH_fleet.json: {e}"),
    }
}
