//! Regenerates the paper's table1 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::table1::run());
}
