//! Regenerates every table and figure of the paper in one run.

fn main() {
    for (name, output) in [
        ("table1", ocasta_bench::table1::run()),
        ("table2", ocasta_bench::table2::run()),
        ("table3", ocasta_bench::table3::run()),
        ("table4", ocasta_bench::table4::run()),
        ("fig2", ocasta_bench::fig2::run()),
        ("fig3", ocasta_bench::fig3::run()),
        ("fig4", ocasta_bench::fig4::run()),
    ] {
        println!("================ {name} ================");
        println!("{output}");
    }
}
