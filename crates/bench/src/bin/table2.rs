//! Regenerates the paper's table2 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::table2::run());
}
