//! Regenerates the paper's Figure 2 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::fig2::run());
}
