//! Regenerates the paper's Figure 3 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::fig3::run());
}
