//! Gates fresh `BENCH_*.json` artifacts against the tracked baselines.
//!
//! Usage:
//!
//! ```text
//! bench-compare [--baseline-dir DIR] [--fresh-dir DIR] [bench ...]
//! ```
//!
//! With no bench names, every gated bench (`fleet`, `stream`, `repair`,
//! `retention`) is checked. `--baseline-dir` defaults to `baselines`
//! (the copies tracked in the repository); `--fresh-dir` defaults to the
//! current directory (where the bench binaries write). Exits non-zero on
//! any regression or unreadable input, so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_dir = PathBuf::from("baselines");
    let mut fresh_dir = PathBuf::from(".");
    let mut benches: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = PathBuf::from(dir),
                None => return usage("--baseline-dir needs a value"),
            },
            "--fresh-dir" => match args.next() {
                Some(dir) => fresh_dir = PathBuf::from(dir),
                None => return usage("--fresh-dir needs a value"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag `{flag}`")),
            bench => benches.push(bench.to_string()),
        }
    }
    if benches.is_empty() {
        benches = ocasta_bench::compare::GATED_BENCHES
            .iter()
            .map(|b| (*b).to_string())
            .collect();
    }
    match ocasta_bench::compare::run_cli(&benches, &baseline_dir, &fresh_dir) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "bench-compare: {problem}\n\
         usage: bench-compare [--baseline-dir DIR] [--fresh-dir DIR] [bench ...]"
    );
    ExitCode::from(2)
}
