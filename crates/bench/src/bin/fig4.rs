//! Regenerates the paper's Figure 4 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::fig4::run());
}
