//! Streaming vs batch reclustering sweep. Run with --release.
//!
//! Prints the human-readable table and writes `BENCH_stream.json` to the
//! current directory — the machine-readable artifact `bench-compare`
//! gates against the tracked baseline.

fn main() {
    let (table, json) = ocasta_bench::stream::run();
    print!("{table}");
    match std::fs::write("BENCH_stream.json", &json) {
        Ok(()) => println!("wrote BENCH_stream.json"),
        Err(e) => eprintln!("could not write BENCH_stream.json: {e}"),
    }
}
