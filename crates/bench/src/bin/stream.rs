//! Streaming vs batch reclustering sweep. Run with --release.

fn main() {
    print!("{}", ocasta_bench::stream::run());
}
