//! Regenerates the paper's table3 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::table3::run());
}
