//! Regenerates the paper's table4 artifact. Run with --release.

fn main() {
    print!("{}", ocasta_bench::table4::run());
}
