//! Prints the rollback-search cost sweep (history size × trial threads).

fn main() {
    print!("{}", ocasta_bench::repair::run());
}
