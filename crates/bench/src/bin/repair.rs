//! Prints the rollback-search cost sweep (history size × trial threads).
//!
//! Also writes `BENCH_repair.json` to the current directory — the
//! machine-readable artifact `bench-compare` gates against the tracked
//! baseline.

fn main() {
    let (table, json) = ocasta_bench::repair::run();
    print!("{table}");
    match std::fs::write("BENCH_repair.json", &json) {
        Ok(()) => println!("wrote BENCH_repair.json"),
        Err(e) => eprintln!("could not write BENCH_repair.json: {e}"),
    }
}
