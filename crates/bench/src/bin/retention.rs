//! Steady-state retention sweep. Run with --release.
//!
//! Prints the human-readable table and writes `BENCH_retention.json` to
//! the current directory — the machine-readable baseline CI accumulates
//! for the perf trajectory.

fn main() {
    let (table, json) = ocasta_bench::retention::run();
    print!("{table}");
    match std::fs::write("BENCH_retention.json", &json) {
        Ok(()) => println!("wrote BENCH_retention.json"),
        Err(e) => eprintln!("could not write BENCH_retention.json: {e}"),
    }
}
