//! # ocasta-bench — regenerating the paper's tables and figures
//!
//! Each `tableN`/`figN` module reproduces one artifact of the paper's
//! evaluation section; the matching binaries (`cargo run -p ocasta-bench
//! --bin table2 --release`) print the result in the paper's shape, and
//! `--bin run_all` regenerates everything. The `fleet`, `stream`,
//! `repair` and `retention` modules benchmark the scale tiers grown on
//! top of the paper; `compare` gates their JSON artifacts against the
//! tracked baselines in `baselines/` (the `bench-compare` binary).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compare;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fleet;
pub mod repair;
pub mod retention;
pub mod stream;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Renders a text table with aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an x/y series block (one line per point), the textual equivalent
/// of one figure curve.
pub fn render_series(title: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# {title}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>8.1}  {y:>8.2}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let text = render_table(
            &["Name", "N"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "23".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[3].starts_with("long-name  23"));
    }

    #[test]
    fn series_shape() {
        let text = render_series("trials", &[(0.0, 1.0), (2.0, 3.5)]);
        assert!(text.starts_with("# trials\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
