//! Table II — applications and their clusters identified by Ocasta.

use ocasta::{AccuracySummary, AppAccuracy};

use crate::render_table;

/// Deployment length used for the per-application accuracy traces (the
/// paper's traces span 18–84 days; 45 is representative).
pub const EVAL_DAYS: u64 = 45;

/// Evaluates the 11 applications.
pub fn rows() -> Vec<AppAccuracy> {
    ocasta::evaluate_all(EVAL_DAYS)
}

/// Renders the paper-shaped table plus the two aggregate accuracy numbers.
pub fn run() -> String {
    let apps = rows();
    let body: Vec<Vec<String>> = apps
        .iter()
        .map(|a| {
            vec![
                a.app.clone(),
                a.category.clone(),
                a.keys.to_string(),
                format!("{}/{}", a.multi_clusters, a.total_clusters),
                a.accuracy()
                    .map_or_else(|| "N/A".to_owned(), |x| format!("{x:.1}%")),
                a.paper_accuracy
                    .map_or_else(|| "N/A".to_owned(), |x| format!("{x:.1}%")),
            ]
        })
        .collect();
    let summary = AccuracySummary::from_apps(&apps);
    let mut out =
        String::from("Table II: Applications and their clusters identified by Ocasta\n\n");
    out.push_str(&render_table(
        &[
            "Application",
            "Description",
            "#Keys",
            "#Clusters",
            "%Accuracy",
            "%Paper",
        ],
        &body,
    ));
    out.push_str(&format!(
        "\nOverall accuracy: {:.1}% (paper: 88.6%)   Mean per-app accuracy: {:.1}% (paper: 72.3%)\n",
        summary.overall_accuracy(),
        summary.mean_accuracy,
    ));
    out.push_str(&format!(
        "Total multi-setting clusters: {} (paper: 255)\n",
        summary.multi_clusters
    ));
    out
}
