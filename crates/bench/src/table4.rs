//! Table IV — Ocasta recovery performance over the 16 errors, with the
//! `Ocasta-NoClust` baseline comparison.

use ocasta::{
    run_noclust, run_scenario, ClusterParams, ErrorScenario, ScenarioConfig, ScenarioOutcome,
};

use crate::render_table;

/// The two runs (Ocasta + NoClust) of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The scenario.
    pub scenario: ErrorScenario,
    /// The Ocasta run (tuned parameters for errors #2/#4, as in §VI-B).
    pub ocasta: ScenarioOutcome,
    /// The NoClust baseline run.
    pub noclust: ScenarioOutcome,
}

/// Runs all 16 cases (in parallel).
pub fn results() -> Vec<CaseResult> {
    let out = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for scenario in ocasta::scenarios() {
            let out = &out;
            scope.spawn(move || {
                let params = if scenario.needs_tuning {
                    ScenarioConfig::tuned_for(&scenario)
                } else {
                    ClusterParams::default()
                };
                let config = ScenarioConfig {
                    params,
                    ..ScenarioConfig::default()
                };
                let ocasta = run_scenario(&scenario, &config);
                let noclust = run_noclust(&scenario, &config);
                out.lock().unwrap().push(CaseResult {
                    scenario,
                    ocasta,
                    noclust,
                });
            });
        }
    });
    let mut results = out.into_inner().unwrap();
    results.sort_by_key(|r| r.scenario.id);
    results
}

/// Renders the paper-shaped table.
pub fn run() -> String {
    let results = results();
    let body: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let s = &r.scenario;
            let o = &r.ocasta;
            vec![
                s.id.to_string(),
                o.fixed_cluster_size
                    .map_or_else(|| "-".to_owned(), |n| n.to_string()),
                o.search
                    .trials_to_fix
                    .map_or_else(|| "-".to_owned(), |n| n.to_string()),
                format!(
                    "{}/{}",
                    o.search
                        .time_to_fix
                        .map_or_else(|| "-".to_owned(), |t| t.as_mmss()),
                    o.search.total_time.as_mmss(),
                ),
                o.search.screenshots_to_fix.to_string(),
                if o.is_fixed() { "Y" } else { "N" }.to_owned(),
                if r.noclust.is_fixed() { "Y" } else { "N" }.to_owned(),
                format!(
                    "{}/{}",
                    s.paper_cluster_size,
                    if s.paper_noclust_fixes { "Y" } else { "N" }
                ),
            ]
        })
        .collect();
    let mut out = String::from(
        "Table IV: Ocasta recovery performance (errors #2 and #4 run with the\n\
         paper's tuned parameters; times use the per-trial cost model)\n\n",
    );
    out.push_str(&render_table(
        &[
            "Case",
            "Cl.Size",
            "Trials",
            "Time(mm:ss)",
            "Screens",
            "Ocasta",
            "NoClust",
            "Paper(sz/NC)",
        ],
        &body,
    ));
    let fixed = results.iter().filter(|r| r.ocasta.is_fixed()).count();
    let noclust_fixed = results.iter().filter(|r| r.noclust.is_fixed()).count();
    let mean_screens: f64 = results
        .iter()
        .map(|r| r.ocasta.search.screenshots_to_fix as f64)
        .sum::<f64>()
        / results.len() as f64;
    let speedup: Vec<f64> = results
        .iter()
        .filter_map(|r| {
            let found = r.ocasta.search.time_to_fix?.as_secs_f64();
            let total = r.ocasta.search.total_time.as_secs_f64();
            (total > 0.0).then(|| 100.0 * (1.0 - found / total))
        })
        .collect();
    let mean_speedup = speedup.iter().sum::<f64>() / speedup.len().max(1) as f64;
    out.push_str(&format!(
        "\nOcasta fixed {fixed}/16 (paper: 16/16); NoClust fixed {noclust_fixed}/16 (paper: 11/16)\n\
         Mean screenshots to confirm: {mean_screens:.1} (paper: ~3)\n\
         Sort finds the offending cluster {mean_speedup:.0}% faster than exhaustive search (paper: 78%)\n",
    ));
    out
}
