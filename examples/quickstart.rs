//! Quickstart: record configuration accesses, cluster related settings,
//! and roll an error back.
//!
//! ```sh
//! cargo run -p ocasta --example quickstart
//! ```

use ocasta::{search, FixOracle, Ocasta, Screenshot, SearchConfig, Timestamp, Trial, Ttkv, Value};

fn main() {
    // 1. Record configuration accesses. In a deployment this is done by a
    //    logger (registry hook, GConf shim or file flush differ); here we
    //    play the application ourselves. The mail client updates its
    //    mark-seen pair together (they are one feature), while the window
    //    width churns on its own.
    let mut store = Ttkv::new();
    for day in 0..6u64 {
        let t = Timestamp::from_days(day);
        store.write(t, "mail/mark_seen", Value::from(true));
        store.write(
            t,
            "mail/mark_seen_timeout",
            Value::from(1000 + day as i64 * 100),
        );
        store.write(
            Timestamp::from_days(day) + ocasta::TimeDelta::from_mins(30 + day),
            "mail/window_width",
            Value::from(700 + day as i64),
        );
    }

    // 2. Cluster related settings from co-modification statistics (the
    //    paper's defaults: 1-second window, correlation threshold 2).
    let clustering = Ocasta::default().cluster_store(&store);
    println!("clusters found:");
    for cluster in clustering.clusters() {
        let names: Vec<&str> = cluster.iter().map(|k| k.as_str()).collect();
        println!("  {names:?}");
    }

    // 3. Break the feature: both settings of the pair go bad at once.
    let t_err = Timestamp::from_days(10);
    store.write(t_err, "mail/mark_seen", Value::from(false));
    store.write(t_err, "mail/mark_seen_timeout", Value::from(-1));

    // 4. Repair: the trial renders the visible state, the oracle plays the
    //    user confirming a screenshot, and the search rolls clusters back.
    let trial = Trial::new("open an e-mail and wait", |config| {
        let mut shot = Screenshot::new();
        let healthy = config.get_bool("mail/mark_seen").unwrap_or(false)
            && config.get_int("mail/mark_seen_timeout").unwrap_or(-1) >= 0;
        shot.add_if(healthy, "auto_mark_read");
        shot
    });
    let clustering = Ocasta::default().cluster_store(&store);
    let outcome = search(
        &store,
        clustering.clusters(),
        &trial,
        &FixOracle::element_visible("auto_mark_read"),
        &SearchConfig::default(),
    );

    let fix = outcome
        .fix
        .expect("the recorded history contains a good state");
    println!(
        "\nfixed after {} trial(s) by rolling back {:?} to before {}",
        outcome.trials_to_fix.unwrap(),
        fix.keys.iter().map(|k| k.as_str()).collect::<Vec<_>>(),
        fix.version,
    );
}
