//! The application-file logger path: watch a JSON configuration file across
//! flushes, infer key-level writes with the flush differ, feed them into a
//! TTKV and cluster the settings — exactly what Ocasta's file logger does
//! for applications like Chrome (§IV-B3).
//!
//! ```sh
//! cargo run -p ocasta --example config_file_watch
//! ```

use ocasta::{
    detect_format, diff_flush, parse, FlatConfig, FlushChange, Format, Ocasta, Timestamp, Ttkv,
};

/// The preference file the "application" flushes after each change.
fn flushes() -> Vec<(u64, &'static str)> {
    vec![
        // install: defaults written
        (
            0,
            r#"{"toolbar": {"home": true, "bookmarks": true},
                "proxy": {"mode": "direct", "host": "", "port": 0},
                "zoom": 1.0}"#,
        ),
        // day 1: the user configures a proxy — mode/host/port change together
        (
            86_400,
            r#"{"toolbar": {"home": true, "bookmarks": true},
                "proxy": {"mode": "manual", "host": "proxy.lab", "port": 8080},
                "zoom": 1.0}"#,
        ),
        // day 2: zoom fiddling (independent)
        (
            172_800,
            r#"{"toolbar": {"home": true, "bookmarks": true},
                "proxy": {"mode": "manual", "host": "proxy.lab", "port": 8080},
                "zoom": 1.25}"#,
        ),
        // day 3: proxy switched off — the trio changes together again
        (
            259_200,
            r#"{"toolbar": {"home": true, "bookmarks": true},
                "proxy": {"mode": "direct", "host": "", "port": 0},
                "zoom": 1.25}"#,
        ),
        // day 4: more zoom churn
        (
            345_600,
            r#"{"toolbar": {"home": true, "bookmarks": true},
                "proxy": {"mode": "direct", "host": "", "port": 0},
                "zoom": 1.5}"#,
        ),
    ]
}

fn main() {
    let mut store = Ttkv::new();
    let mut previous = FlatConfig::new();
    for (secs, content) in flushes() {
        let format = detect_format(content).expect("recognisable config format");
        assert_eq!(format, Format::Json);
        let snapshot = parse(format, content).expect("valid file").flatten();
        let changes = diff_flush(&previous, &snapshot);
        let t = Timestamp::from_secs(secs);
        println!("flush at {t}: {} inferred change(s)", changes.len());
        for change in &changes {
            match change {
                FlushChange::Set { key, value } => {
                    println!("  set {key} = {value}");
                    store.write(t, format!("app/{key}"), value.clone());
                }
                FlushChange::Removed { key } => {
                    println!("  del {key}");
                    store.delete(t, format!("app/{key}"));
                }
            }
        }
        previous = snapshot;
    }

    let clustering = Ocasta::default().cluster_store(&store);
    println!("\nclusters inferred from file flushes:");
    for cluster in clustering.clusters() {
        let names: Vec<&str> = cluster.iter().map(|k| k.as_str()).collect();
        println!("  {names:?}");
    }
    let proxy = clustering
        .cluster_of("app/proxy/mode")
        .expect("proxy keys were modified");
    assert_eq!(proxy.len(), 3, "the proxy trio clusters together");
    println!("\nthe proxy trio was correctly identified as one cluster");
}
