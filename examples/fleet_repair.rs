//! The full Ocasta loop at fleet scale: ingest a simulated fleet
//! concurrently, pin a cluster catalog from the live stream and a history
//! snapshot from the live sharded store *while ingestion is still
//! running*, then repair users' configuration errors with the parallel
//! rollback search — sessions and ingestion proceeding side by side.
//!
//! Run with: `cargo run --example fleet_repair --release`

use ocasta::fleet::{fleet_machines, FleetRunConfig};
use ocasta::{
    fleet_ingest_into, scenarios, FleetConfig, Ocasta, OcastaStream, RepairSession, SearchConfig,
    ShardedTtkv, TimeDelta, Timestamp, WriteLanes,
};

fn main() {
    // 1. The fleet: 6 machines running the apps our two broken users use.
    let config = FleetRunConfig {
        machines: 6,
        days: 12,
        seed: 21,
        apps: vec!["chrome".into(), "acrobat".into()],
        engine: FleetConfig {
            shards: 8,
            ingest_threads: 2,
            batch_size: 128,
            ..FleetConfig::default()
        },
        ..FleetRunConfig::default()
    };
    let machines = fleet_machines(&config).expect("catalog apps resolve");

    // 2. The live tiers: a caller-owned sharded store (stays readable while
    //    ingestion appends) and the streaming clustering fed by the tap.
    let sharded = ShardedTtkv::new(config.engine.shards);
    let lanes = WriteLanes::new(config.engine.shards);
    let engine = Ocasta::default();
    let mut stream = OcastaStream::new(&engine);

    // Two users hit two Table III errors (Chrome's missing bookmark bar,
    // Acrobat's vanished menu bar).
    let all = scenarios();
    let broken = [
        all.iter()
            .find(|s| s.id == 13)
            .expect("scenario 13")
            .clone(),
        all.iter()
            .find(|s| s.id == 15)
            .expect("scenario 15")
            .clone(),
    ];

    std::thread::scope(|scope| {
        // 3. Ingestion runs in the background for the whole example.
        let ingest = scope.spawn(|| fleet_ingest_into(&machines, &config.engine, &sharded, &lanes));

        // 4. Wait until the stream has seen enough of the fleet, then PIN:
        //    catalog first (so its horizon is a lower bound), snapshot
        //    second. Ingestion does not stop.
        loop {
            stream.drain_lanes(&lanes);
            let finished = ingest.is_finished();
            if stream.horizon().events >= 2_000 || finished {
                if finished {
                    stream.drain_lanes(&lanes); // absorb the tail
                }
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let live = stream.clustering();
        let snapshot = sharded.snapshot_store();
        // Sampled *after* the snapshot: if ingestion is still running now,
        // the pinned history is certainly a mid-ingest prefix.
        let pinned_mid_ingest = !ingest.is_finished();
        println!(
            "pinned: catalog at epoch {} ({} events), snapshot of {} writes, ingest running: {}",
            live.horizon.epoch,
            live.horizon.events,
            snapshot.stats().writes,
            pinned_mid_ingest,
        );

        // 5. Each user's session: inject their error into their own copy of
        //    the pinned snapshot, guarantee the offending keys are
        //    searchable (singleton fallback for keys the young stream may
        //    not have clustered yet), and run the parallel rollback search.
        let reports: Vec<_> = broken
            .iter()
            .enumerate()
            .map(|(user, scenario)| {
                let mut catalog = live.catalog();
                for key in scenario.offending_keys() {
                    catalog.ensure_singleton(&key);
                }
                let mut store = snapshot.clone();
                let end = store.last_mutation_time().unwrap_or(Timestamp::EPOCH);
                scenario.inject(
                    &mut store,
                    end + TimeDelta::from_mins(5 * (user as u64 + 1)),
                );
                let session = RepairSession::new(
                    format!("user{user}"),
                    store,
                    catalog,
                    SearchConfig {
                        trial_cost: scenario.trial_cost,
                        ..SearchConfig::default()
                    },
                )
                .with_threads(2);
                let scenario = scenario.clone();
                scope.spawn(move || {
                    let report = session.run(&scenario.trial(), &scenario.oracle());
                    (scenario, report)
                })
            })
            // Collect the handles *first* so every session is running
            // before any is joined (a lazy spawn->join chain would run
            // them one after another).
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("session panicked"))
            .collect();

        for (scenario, report) in &reports {
            println!(
                "{}: error #{} ({}) fixed={} in {} of {} trials, {} screenshots, \
                 pinned epoch {}",
                report.user,
                scenario.id,
                scenario.description,
                report.is_fixed(),
                report.outcome.trials_to_fix.unwrap_or(0),
                report.outcome.total_trials,
                report.outcome.screenshots_to_fix,
                report.horizon.epoch,
            );
            assert!(report.is_fixed(), "rollback search must clear the symptom");
        }

        // 6. Ingestion ran underneath the whole time; let it finish.
        let ingest_report = ingest.join().expect("ingest thread panicked");
        println!("ingested: {ingest_report}");
        let final_store = sharded.snapshot_store();
        println!(
            "fleet store grew to {} writes while sessions repaired against their pins",
            final_store.stats().writes,
        );
    });
}
