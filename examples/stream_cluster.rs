//! Streaming clustering end to end: ingest a simulated fleet concurrently
//! while serving live clusterings from the event stream — no stop-the-world
//! rescan — then prove the final answer equals the batch pipeline's.
//!
//! Run with: `cargo run --example stream_cluster --release`

use ocasta::fleet::{fleet_machines, FleetRunConfig};
use ocasta::{fleet_ingest_tapped, FleetConfig, Ocasta, OcastaStream, WriteLanes};

fn main() {
    // 1. Describe the fleet: 6 machines, 15 days, three desktop apps each.
    let config = FleetRunConfig {
        machines: 6,
        days: 15,
        seed: 7,
        apps: vec!["gedit".into(), "evolution".into(), "chrome".into()],
        engine: FleetConfig {
            shards: 8,
            ingest_threads: 4,
            batch_size: 128,
            ..FleetConfig::default()
        },
        ..FleetRunConfig::default()
    };
    let machines = fleet_machines(&config).expect("catalog apps resolve");

    // 2. Attach analytics lanes to the ingestion engine: every accepted
    //    batch also lands, outside the shard locks, in a per-shard lane.
    let lanes = WriteLanes::new(config.engine.shards);
    let engine = Ocasta::default();
    let mut stream = OcastaStream::new(&engine);

    // 3. Ingest on a background thread; serve clusterings *while it runs*
    //    by draining the lanes into the incremental correlation state.
    let (store, report) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| fleet_ingest_tapped(&machines, &config.engine, &lanes));
        loop {
            let finished = handle.is_finished();
            if stream.drain_lanes(&lanes) > 0 {
                let live = stream.clustering();
                let stats = live.clustering.stats();
                println!(
                    "live: epoch {:>2}  {:>6} events  {:>4} clusters ({} multi)",
                    live.horizon.epoch, live.horizon.events, stats.clusters, stats.multi_clusters,
                );
            }
            if finished {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.join().expect("ingest thread panicked")
    });
    println!("ingested: {report}");

    // 4. Seal the stream (nothing older can arrive) and serve the final
    //    clustering, stamped with the horizon it reflects.
    stream.seal();
    let live = stream.clustering();
    let stats = live.clustering.stats();
    println!(
        "final:    epoch {}, {} events @ watermark {}ms",
        live.horizon.epoch, live.horizon.events, live.horizon.watermark_ms,
    );
    println!(
        "clusters: {} total, {} multi-setting, mean multi size {:.2}",
        stats.clusters,
        stats.multi_clusters,
        stats.mean_multi_cluster_size(),
    );
    for cluster in live.clustering.multi_clusters().take(5) {
        let names: Vec<&str> = cluster.iter().map(|k| k.as_str()).collect();
        println!("  e.g. {}", names.join(" + "));
    }

    // 5. The invariant that makes this safe to ship: the streamed answer
    //    *is* the batch answer over the recorded store. Exactly.
    let batch = engine.cluster_store(&store);
    assert_eq!(live.clustering, batch, "streaming == batch");
    println!("verified: streaming == batch over {} keys", store.len());
}
