//! Fleet ingestion end to end: simulate a small machine fleet, ingest its
//! traces concurrently through the sharded TTKV with a write-ahead log,
//! merge, cluster, and report — the paper's 29-machine deployment in
//! miniature.
//!
//! Run with: `cargo run --example fleet_ingest --release`

use ocasta::fleet::{run_fleet, FleetRunConfig};
use ocasta::{FleetConfig, KeyPlacement, TimePrecision, Wal};

fn main() {
    // 1. Describe the fleet: 8 machines, 20 days, three desktop apps each.
    let wal_dir = std::env::temp_dir().join(format!("ocasta-fleet-example-{}", std::process::id()));
    let config = FleetRunConfig {
        machines: 8,
        days: 20,
        seed: 42,
        apps: vec!["gedit".into(), "evolution".into(), "chrome".into()],
        engine: FleetConfig {
            shards: 8,
            ingest_threads: 4,
            batch_size: 256,
            precision: TimePrecision::Seconds,
            placement: KeyPlacement::Merged,
            retention: None,
            ..FleetConfig::default()
        },
        wal_dir: Some(wal_dir.clone()),
    };

    // 2. Ingest concurrently: lazy per-machine event streams feed
    //    hash-striped TTKV shards, every batch is WAL-logged first.
    let run = run_fleet(&config).expect("catalog apps resolve");
    println!("ingested: {}", run.report);
    println!("store:    {}", run.store.stats());

    // 3. The WAL is replayable: the reconstructed store matches exactly.
    let mut wal = Wal::open(&wal_dir).expect("wal dir");
    let replayed = wal.replay(TimePrecision::Milliseconds).expect("replay");
    assert_eq!(replayed, run.store, "WAL replay reproduces the store");
    println!(
        "wal:      {} bytes replayed into an identical store",
        wal.log_bytes()
    );

    // 4. Snapshot compaction bounds the log without losing state.
    let compacted = wal.compact(TimePrecision::Milliseconds).expect("compact");
    assert_eq!(compacted, run.store);
    println!("wal:      compacted, log now {} bytes", wal.log_bytes());

    // 5. Hand the merged store to the paper's pipeline: cluster the
    //    co-modified settings across the whole fleet.
    let clustering = run.cluster();
    let stats = clustering.stats();
    println!(
        "clusters: {} total, {} multi-setting, mean multi size {:.2}",
        stats.clusters,
        stats.multi_clusters,
        stats.mean_multi_cluster_size(),
    );
    for cluster in clustering.multi_clusters().take(5) {
        let names: Vec<&str> = cluster.iter().map(|k| k.as_str()).collect();
        println!("  e.g. {}", names.join(" + "));
    }

    std::fs::remove_dir_all(&wal_dir).ok();
}
