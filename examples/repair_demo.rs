//! End-to-end repair of a Table III error: Chrome's bookmark bar disappears
//! (error #13), reproduced on a generated 84-day usage trace.
//!
//! ```sh
//! cargo run -p ocasta --example repair_demo
//! ```

use ocasta::{prepare_store, run_noclust, run_scenario, scenarios, ScenarioConfig};

fn main() {
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.id == 13)
        .expect("error #13 exists");
    println!("case #{}: {}", scenario.id, scenario.description);
    println!(
        "trace: {} ({} days of {} usage, {} logger)",
        scenario.trace_name,
        scenario.trace_days,
        scenario.model().display_name,
        scenario.logger,
    );

    let config = ScenarioConfig::default();
    let (store, injected_at) = prepare_store(&scenario, &config);
    println!(
        "\ninjected at {} (14 days before the end); store: {}",
        injected_at,
        store.stats(),
    );

    let outcome = run_scenario(&scenario, &config);
    match &outcome.search.fix {
        Some(fix) => {
            println!("\nOcasta fixed it:");
            println!(
                "  trials to find the offending cluster: {}",
                outcome.search.trials_to_fix.unwrap()
            );
            println!(
                "  exhaustive search would take:          {} trials",
                outcome.search.total_trials
            );
            println!(
                "  screenshots the user examined:         {}",
                outcome.search.screenshots_to_fix
            );
            println!(
                "  rolled back {:?} to before {}",
                fix.keys.iter().map(|k| k.as_str()).collect::<Vec<_>>(),
                fix.version,
            );
            println!(
                "  modeled recovery time: {} (full search: {})",
                outcome.search.time_to_fix.unwrap().as_mmss(),
                outcome.search.total_time.as_mmss(),
            );
        }
        None => println!("\nOcasta could not fix it (no good state in history)"),
    }

    let noclust = run_noclust(&scenario, &config);
    println!(
        "\nOcasta-NoClust (single-setting rollbacks): {}",
        if noclust.is_fixed() {
            "also fixes this one"
        } else {
            "FAILS"
        },
    );
}
