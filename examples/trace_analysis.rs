//! Trace analysis: generate a full desktop's usage trace (the Linux-1 lab
//! machine), replay it into a TTKV, and report per-application cluster
//! statistics — a miniature of the paper's Tables I and II.
//!
//! ```sh
//! cargo run -p ocasta --example trace_analysis
//! ```

use ocasta::{
    all_models, generate, GeneratorConfig, Key, MachineProfile, Ocasta, OsFlavor, TimePrecision,
    TtkvStats,
};

fn main() {
    let profile = MachineProfile::by_name("Linux-1").expect("profile exists");
    let mut specs: Vec<_> = all_models()
        .into_iter()
        .filter(|m| m.os == OsFlavor::Linux)
        .map(|m| m.spec)
        .collect();
    profile.calibrate(&mut specs);

    let config = GeneratorConfig::new(profile.name, profile.days, profile.seed);
    let trace = generate(&config, &specs);
    let stats = trace.stats();
    println!(
        "{}: {} days, {} reads, {} writes, {} deletes, {} keys",
        profile.name,
        stats.days,
        TtkvStats::humanize(stats.reads),
        TtkvStats::humanize(stats.writes),
        stats.deletes,
        stats.keys,
    );

    let store = trace.replay(TimePrecision::Seconds);
    println!(
        "TTKV after replay: {} (~{})",
        store.stats(),
        TtkvStats::humanize_bytes(store.approx_bytes()),
    );

    // Per-application clustering, as the paper evaluates it.
    let engine = Ocasta::default();
    println!("\nper-application clusters (window 1s, threshold 2):");
    for model in all_models().into_iter().filter(|m| m.os == OsFlavor::Linux) {
        let clustering = engine.cluster_app(&store, &Key::new(model.name));
        let stats = clustering.stats();
        println!(
            "  {:<16} {:>4} clusters, {:>3} with >1 setting, largest {}",
            model.display_name, stats.clusters, stats.multi_clusters, stats.max_cluster_size,
        );
        for cluster in clustering.multi_clusters().take(2) {
            let names: Vec<&str> = cluster.iter().map(|k| k.as_str()).collect();
            println!("      e.g. {names:?}");
        }
    }

    // The trace itself round-trips through the text format.
    let text = trace.save_to_string();
    println!(
        "\ntrace file: {} lines, {}",
        text.lines().count(),
        TtkvStats::humanize_bytes(text.len() as u64),
    );
}
