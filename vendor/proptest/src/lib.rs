//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! [`any`], [`Just`], range and tuple strategies, a regex-subset string
//! strategy, [`collection::vec`]/[`collection::btree_map`],
//! [`bool::weighted`], the [`prop_oneof!`] union macro and the
//! [`proptest!`] test-runner macro.
//!
//! Differences from the real engine, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the case
//!   counter and seed printed on failure) but is not minimised;
//! * **fixed deterministic seeding** — each test's RNG is seeded from the
//!   test name, so a run is reproducible without a persistence file;
//! * **`PROPTEST_CASES`** (default 64) controls the number of cases.
//!
//! String strategies accept the regex subset the workspace uses: literal
//! characters, character classes like `[A-Za-z0-9_ .-]` (ranges, literals,
//! trailing `-`), the `\PC` printable-character escape, and `{m,n}`
//! repetition.

#![forbid(unsafe_code)]

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// inner occurrences and returns the composite level. The result mixes
    /// leaves back in at every level so structures terminate at varied
    /// depths. `_desired_size` and `_expected_branch` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![(1, leaf.clone()), (2, recurse(level).boxed())]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-typed strategies; what [`prop_oneof!`] builds.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.random_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// The full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy covering the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns: exercises subnormals, infinities and NaN, which
        // is exactly what bit-exact persistence round-trips should face.
        f64::from_bits(rng.random::<u64>())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.random::<u64>() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.random_range(0x20u32..0x7F)).expect("printable ascii")
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String strategies from regex-subset patterns
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum AtomKind {
    Literal(char),
    /// Inclusive character ranges, e.g. `[A-Za-z0-9_]`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable, non-control character.
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        let kind = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut items: Vec<char> = Vec::new();
                for inner in chars.by_ref() {
                    if inner == ']' {
                        break;
                    }
                    items.push(inner);
                }
                let mut i = 0;
                while i < items.len() {
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        ranges.push((items[i], items[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((items[i], items[i]));
                        i += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                AtomKind::Class(ranges)
            }
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // Only the printable-character class `\PC` is supported.
                    let class = chars.next();
                    assert_eq!(class, Some('C'), "unsupported \\P class in {pattern:?}");
                    AtomKind::AnyPrintable
                }
                Some('n') => AtomKind::Literal('\n'),
                Some('t') => AtomKind::Literal('\t'),
                Some('r') => AtomKind::Literal('\r'),
                Some(other) => AtomKind::Literal(other),
                None => panic!("dangling backslash in pattern {pattern:?}"),
            },
            other => AtomKind::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for inner in chars.by_ref() {
                if inner == '}' {
                    break;
                }
                spec.push(inner);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

fn generate_char(kind: &AtomKind, rng: &mut TestRng) -> char {
    match kind {
        AtomKind::Literal(c) => *c,
        AtomKind::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.random_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick).expect("class range is valid");
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
        AtomKind::AnyPrintable => {
            // Mostly printable ASCII (which exercises quoting and escaping),
            // with a sprinkle of multi-byte characters to keep UTF-8
            // handling honest.
            const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '→', '日', '本', '😀'];
            if rng.random_bool(0.12) {
                EXOTIC[rng.random_range(0..EXOTIC.len())]
            } else {
                char::from_u32(rng.random_range(0x20u32..0x7F)).expect("printable ascii")
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.random_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(generate_char(&atom.kind, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Collection-valued strategies (`vec`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A collection size specification: an exact count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.random_range(self.min..self.max_exclusive)
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the map
    /// may be smaller than the drawn size.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Boolean-valued strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(self.p)
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` for [`cases`] deterministic cases; used by [`proptest!`].
pub fn run_cases<F: FnMut(&mut TestRng)>(test_name: &str, mut body: F) {
    // FNV-1a over the test name: stable, deterministic seeding per test.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let total = cases();
    for case in 0..total {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(u64::from(case)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest shim: {test_name} failed at case {case}/{total} \
                 (seed {seed:#018x}; rerun is deterministic)"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Declares property tests: each argument is drawn from its strategy for
/// every case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Property-test assertion; equivalent to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-test equality assertion; equivalent to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property-test inequality assertion; equivalent to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Weighted or unweighted union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Everything a property-test file needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::weighted`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = rng();
        let strat = (0u8..4, 10u64..=20, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn regex_subset_patterns() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));

            let t = "[ -~]{0,16}".generate(&mut rng);
            assert!(t.chars().count() <= 16);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");

            let u = "\\PC{0,40}".generate(&mut rng);
            assert!(u.chars().count() <= 40);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn oneof_weights_and_collections() {
        let mut rng = rng();
        let strat = prop_oneof![
            4 => Just(0u8),
            1 => Just(1u8),
        ];
        let n = 10_000;
        let ones: u32 = (0..n).map(|_| u32::from(strat.generate(&mut rng))).sum();
        // Expect ~20% ones.
        assert!((1_000..3_000).contains(&ones), "ones: {ones}");

        let lists = prop::collection::vec(0u8..3, 2..5);
        for _ in 0..100 {
            let v = lists.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let maps = prop::collection::btree_map("[a-c]", 0i32..5, 0..6);
        for _ in 0..100 {
            let m = maps.generate(&mut rng);
            assert!(m.len() < 6);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth_of(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => usize::from(*n < 10),
                Tree::Node(children) => 1 + children.iter().map(depth_of).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..200 {
            // Depth bound: 3 recursion levels + the leaf itself.
            assert!(depth_of(&strat.generate(&mut rng)) <= 4 + 3);
        }
    }

    proptest! {
        /// The macro itself: draws values, runs the body for many cases.
        #[test]
        fn macro_drives_cases(x in 0u32..100, ys in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 4).count(), 0);
            prop_assert_ne!(x, 100);
        }
    }
}
