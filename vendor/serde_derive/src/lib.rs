//! No-op `Serialize`/`Deserialize` derives for the vendored serde shim.
//!
//! The workspace only gates serde support behind the optional `serde`
//! feature (`#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]`);
//! no code path actually serialises through a serde backend. These derives
//! therefore expand to nothing: the attribute stays syntactically valid and
//! the build stays offline-friendly. See `vendor/serde/src/lib.rs`.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
