//! Offline shim for the `serde` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough of serde's trait surface for the workspace's
//! optional `serde` feature to compile: the `Serialize`/`Deserialize`
//! traits, minimal `Serializer`/`Deserializer` traits covering the manual
//! impls in `ocasta-ttkv` (`Key`), and no-op derive macros re-exported from
//! the vendored `serde_derive`.
//!
//! No serialisation backend exists in this workspace, so the derives expand
//! to nothing; swapping this shim for the real serde (by pointing the
//! workspace dependency at crates.io) requires no source changes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A data format that can serialise values (minimal surface).
pub trait Serializer: Sized {
    /// Output of a successful serialisation.
    type Ok;
    /// Serialisation error type.
    type Error;

    /// Serialises a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can deserialise values (minimal surface).
pub trait Deserializer<'de>: Sized {
    /// Deserialisation error type.
    type Error;

    /// Deserialises an owned string.
    fn deserialize_string(self) -> Result<String, Self::Error>;
}

/// Types serialisable through a [`Serializer`].
pub trait Serialize {
    /// Serialises `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types deserialisable through a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialises a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
