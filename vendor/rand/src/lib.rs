//! Offline shim for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate implements exactly the subset of the `rand` 0.9 API
//! the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`random`, `random_range`, `random_bool`) and
//! the slice helpers in [`seq`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a small,
//! well-studied construction with excellent statistical quality for
//! simulation workloads. It is **deterministic across platforms**, which
//! the workspace's seeded workload generator relies on, and is **not**
//! cryptographically secure (neither is the real `StdRng` contractually).

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full value domain via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Lemire's widening-multiply range reduction (bias is
                // immaterial for simulation workloads).
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                low.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (low as i64).wrapping_add(draw as i64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        let unit = f64::sample(rng);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        let unit = f32::sample(rng);
        low + unit * (high - low)
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HasPredecessor> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Types with a largest-value-below operation, used to turn a half-open
/// integer range into an inclusive one (floats use the bound itself, so a
/// half-open float range behaves as `[low, high)` to within rounding).
pub trait HasPredecessor: Sized {
    /// The greatest representable value strictly less than `self` for
    /// integers; `self` for floats.
    fn predecessor(self) -> Self;
}

macro_rules! impl_has_predecessor_int {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> $t { self - 1 }
        }
    )*};
}
impl_has_predecessor_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HasPredecessor for f64 {
    fn predecessor(self) -> f64 {
        self
    }
}

impl HasPredecessor for f32 {
    fn predecessor(self) -> f32 {
        self
    }
}

/// Extension methods on random-bit sources: the user-facing sampling API.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution (full
    /// domain for integers, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose entire stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::Rng;

    /// Uniform random selection from an indexable collection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
        let heads = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle virtually never is identity"
        );
    }
}
