//! Offline shim for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace's benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with throughput annotations — over a simple median-of-samples
//! timing loop. No plotting, no statistical regression analysis; each
//! benchmark prints one line:
//!
//! ```text
//! ttkv_write/10000        time:   1.234 ms/iter   (8.1 Melem/s, 31 samples)
//! ```
//!
//! The measurement strategy is: time single calls until the per-iteration
//! cost is known, pick an iteration count that makes one sample take ≳2 ms,
//! then report the median sample.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value (the group name provides the
    /// function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{function}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Passed to benchmark closures; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` `iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: how expensive is one iteration?
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // Aim for ~2 ms per sample, capped to keep total runtime bounded.
    let iters =
        (Duration::from_millis(2).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_nanos[per_iter_nanos.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {}/s", humanize(n as f64 / (median * 1e-9), "elem")),
        Throughput::Bytes(n) => format!(", {}/s", humanize(n as f64 / (median * 1e-9), "B")),
    });
    println!(
        "{name:<48} time: {:>12}/iter   ({} samples x {iters} iters{})",
        humanize_nanos(median),
        per_iter_nanos.len(),
        rate.unwrap_or_default(),
    );
}

fn humanize_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn humanize(value: f64, unit: &str) -> String {
    if value >= 1e9 {
        format!("{:.2} G{unit}", value / 1e9)
    } else if value >= 1e6 {
        format!("{:.2} M{unit}", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.2} k{unit}", value / 1e3)
    } else {
        format!("{value:.0} {unit}")
    }
}

/// Collects benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("complete", 100).to_string(),
            "complete/100"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u32, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u32>()
            })
        });
        group.finish();
        assert!(ran > 0, "the routine must actually run");
    }
}
